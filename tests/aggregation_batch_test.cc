// Locks in the batched-aggregation contract of ldp/report_batch.h:
// every AccumulateSupportsBatch override (and the generic fallback)
// produces support counts byte-identical to the per-report
// AccumulateSupports loop, for every factory protocol, through the
// sharded and unsharded Aggregator routes, at batch sizes straddling
// the kReportsPerAggregationShard chunk boundary, and through the
// DetectionFilter's kept-report accumulation.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "attack/mga.h"
#include "ldp/factory.h"
#include "ldp/protocol.h"
#include "ldp/report_batch.h"
#include "recover/detection.h"
#include "util/random.h"

namespace ldpr {
namespace {

// A mixed report stream: genuine perturbed reports plus MGA-crafted
// ones (the report-heavy hot path the batch layer exists for).
std::vector<Report> MakeReports(const FrequencyProtocol& proto, size_t n,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Report> reports;
  reports.reserve(n);
  const size_t crafted = n / 3;
  if (crafted > 0) {
    const MgaAttack mga(MgaAttack::SampleTargets(proto.domain_size(),
                                                 /*r=*/5, rng));
    reports = mga.Craft(proto, crafted, rng);
  }
  for (size_t i = reports.size(); i < n; ++i) {
    reports.push_back(
        proto.Perturb(static_cast<ItemId>(i % proto.domain_size()), rng));
  }
  return reports;
}

std::vector<double> PerReportCounts(const FrequencyProtocol& proto,
                                    const std::vector<Report>& reports) {
  std::vector<double> counts(proto.domain_size(), 0.0);
  for (const Report& r : reports) proto.AccumulateSupports(r, counts);
  return counts;
}

TEST(AggregationBatchTest, BatchMatchesPerReportForAllProtocols) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, /*d=*/37, /*epsilon=*/1.0);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{300}}) {
      const std::vector<Report> reports = MakeReports(*proto, n, 11 + n);
      const ReportBatch batch(reports);
      std::vector<double> batched(proto->domain_size(), 0.0);
      proto->AccumulateSupportsBatch(batch, batched);
      // operator== on vector<double> is bitwise equality here: all
      // entries are exact small integers.
      EXPECT_EQ(batched, PerReportCounts(*proto, reports))
          << ProtocolKindName(kind) << " n=" << n;
    }
  }
}

TEST(AggregationBatchTest, GrrDenseAndSparseRegimesAgree) {
  // d chosen so n=300 takes the histogram branch and n=20 the direct
  // branch; both must match the per-report loop exactly.
  const auto grr = MakeProtocol(ProtocolKind::kGrr, 128, 0.5);
  for (size_t n : {size_t{20}, size_t{300}}) {
    const std::vector<Report> reports = MakeReports(*grr, n, 3);
    std::vector<double> batched(grr->domain_size(), 0.0);
    grr->AccumulateSupportsBatch(ReportBatch(reports), batched);
    EXPECT_EQ(batched, PerReportCounts(*grr, reports)) << n;
  }
}

TEST(AggregationBatchTest, AggregatorRoutesMatchAtChunkBoundaries) {
  // Sizes straddling the kReportsPerAggregationShard boundary, odd on
  // purpose, across sharded and unsharded routes.
  const size_t chunk = kReportsPerAggregationShard;
  const auto proto = MakeProtocol(ProtocolKind::kGrr, 23, 1.0);
  for (size_t n : {chunk - 1, chunk, chunk + 1, 2 * chunk + 13}) {
    const std::vector<Report> reports = MakeReports(*proto, n, n);
    const std::vector<double> reference = PerReportCounts(*proto, reports);

    Aggregator unsharded(*proto);
    unsharded.AddAll(reports);
    EXPECT_EQ(unsharded.support_counts(), reference) << "AddAll n=" << n;
    EXPECT_EQ(unsharded.report_count(), n);

    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      Aggregator sharded(*proto);
      sharded.AddAllSharded(reports, shards);
      EXPECT_EQ(sharded.support_counts(), reference)
          << "AddAllSharded n=" << n << " shards=" << shards;
      EXPECT_EQ(sharded.report_count(), n);
    }
  }
}

TEST(AggregationBatchTest, ShardedMatchesUnshardedForSupportSetProtocols) {
  // Every factory protocol crosses the chunk boundary, at a smaller
  // domain (the O(d)-per-report reference loop is the expensive part).
  const size_t chunk = kReportsPerAggregationShard;
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, 16, 1.0);
    const size_t n = chunk + 37;
    const std::vector<Report> reports = MakeReports(*proto, n, 7);
    Aggregator all(*proto);
    all.AddAll(reports);
    Aggregator sharded(*proto);
    sharded.AddAllSharded(reports, 3);
    EXPECT_EQ(all.support_counts(), sharded.support_counts())
        << ProtocolKindName(kind);
  }
}

// A protocol with no batched override: exercises the generic
// ExtractReport fallback (GRR-shaped, but Supports-driven).
class FallbackProtocol final : public FrequencyProtocol {
 public:
  FallbackProtocol() : FrequencyProtocol(13, 1.0) {}
  ProtocolKind kind() const override { return ProtocolKind::kGrr; }
  std::string Name() const override { return "fallback"; }
  double p() const override { return 0.7; }
  double q() const override { return 0.1; }
  Report Perturb(ItemId item, Rng& rng) const override {
    Report r;
    r.value = static_cast<uint32_t>((item + rng.UniformU64(3)) % d_);
    return r;
  }
  bool Supports(const Report& report, ItemId item) const override {
    return report.value % 5 == item % 5;
  }
  double CountVariance(double, size_t) const override { return 1.0; }
  Report CraftSupportingReport(ItemId item, Rng&) const override {
    Report r;
    r.value = item;
    return r;
  }
};

TEST(AggregationBatchTest, DefaultBatchImplementationReplaysPerReportLoop) {
  const FallbackProtocol proto;
  Rng rng(5);
  std::vector<Report> reports;
  for (size_t i = 0; i < 200; ++i)
    reports.push_back(proto.Perturb(static_cast<ItemId>(i % 13), rng));
  std::vector<double> batched(13, 0.0);
  proto.AccumulateSupportsBatch(ReportBatch(reports), batched);
  EXPECT_EQ(batched, PerReportCounts(proto, reports));
}

TEST(AggregationBatchTest, DetectionOfferAllMatchesPerReportOffer) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, 24, 1.0);
    Rng rng(9);
    const std::vector<ItemId> targets = {1, 5, 17};
    const MgaAttack mga(targets);
    std::vector<Report> reports = mga.Craft(*proto, 150, rng);
    for (size_t i = 0; i < 400; ++i)
      reports.push_back(proto->Perturb(static_cast<ItemId>(i % 24), rng));

    DetectionFilter batched(*proto, targets);
    batched.OfferAll(reports);
    DetectionFilter per_report(*proto, targets);
    for (const Report& r : reports) per_report.Offer(r);

    EXPECT_EQ(batched.offered(), per_report.offered()) << ProtocolKindName(kind);
    EXPECT_EQ(batched.kept(), per_report.kept()) << ProtocolKindName(kind);
    ASSERT_GT(batched.kept(), 0u) << ProtocolKindName(kind);
    EXPECT_EQ(batched.Estimate(), per_report.Estimate())
        << ProtocolKindName(kind);
  }
}

TEST(ReportBatchTest, ExtractReportRoundTrips) {
  const auto oue = MakeProtocol(ProtocolKind::kOue, 9, 1.0);
  Rng rng(4);
  std::vector<Report> reports;
  for (ItemId v = 0; v < 9; ++v) reports.push_back(oue->Perturb(v, rng));
  const ReportBatch batch(reports);
  ASSERT_EQ(batch.size(), reports.size());
  EXPECT_EQ(batch.bits_width(), 9u);
  Report scratch;
  for (size_t i = 0; i < reports.size(); ++i) {
    batch.ExtractReport(i, scratch);
    EXPECT_EQ(scratch.seed, reports[i].seed);
    EXPECT_EQ(scratch.value, reports[i].value);
    EXPECT_EQ(scratch.bits, reports[i].bits);
  }
}

TEST(ReportBatchTest, ClearReusesAsFlushBuffer) {
  const auto grr = MakeProtocol(ProtocolKind::kGrr, 6, 1.0);
  Rng rng(8);
  ReportBatch batch;
  batch.Append(grr->Perturb(2, rng));
  EXPECT_EQ(batch.size(), 1u);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  const auto oue = MakeProtocol(ProtocolKind::kOue, 6, 1.0);
  batch.Append(oue->Perturb(3, rng));  // width re-learned after Clear
  EXPECT_EQ(batch.bits_width(), 6u);
}

TEST(ReportBatchDeathTest, RejectsMixedBitWidths) {
  ReportBatch batch;
  Report with_bits;
  with_bits.bits.assign(4, 0);
  batch.Append(with_bits);
  Report without_bits;
  EXPECT_DEATH(batch.Append(without_bits), "LDPR_CHECK");
  Report wrong_width;
  wrong_width.bits.assign(5, 0);
  EXPECT_DEATH(batch.Append(wrong_width), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
