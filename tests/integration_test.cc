// Full-stack integration tests at reduced paper scale: synthetic
// IPUMS-like data, real protocol aggregation, real attacks, and the
// complete recovery pipeline, asserting the paper's headline
// qualitative results.

#include <memory>

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "recover/outlier.h"
#include "sim/experiment.h"
#include "util/math_util.h"

namespace ldpr {
namespace {

// Full-scale IPUMS stand-in: the closed-form aggregation samplers
// are O(d), so full paper scale (n = 389,894) is cheap for GRR/OUE.
Dataset FullIpums() { return MakeIpumsLike(); }

// A 10%-scale variant for paths that stream per user (OLH detection).
Dataset ScaledIpums() { return ScaleDataset(MakeIpumsLike(), 0.1); }

TEST(IntegrationTest, Figure3ShapeMgaOue) {
  // LDPRecover and LDPRecover* both beat the poisoned estimate under
  // MGA-OUE, with partial knowledge strictly helping.  (Detection is
  // close to an oracle in this one cell — the crafted all-targets OUE
  // signature is deterministic — but brittle elsewhere; see
  // Figure3ShapeDetectionFailsOnAdaptive.)
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 5;
  config.seed = 3;
  const ExperimentResult r = RunExperiment(config, FullIpums());
  EXPECT_LT(r.mse_recover.mean(), r.mse_before.mean());
  EXPECT_LT(r.mse_recover_star.mean(), r.mse_before.mean());
  EXPECT_LT(r.mse_recover_star.mean(), r.mse_recover.mean());
}

TEST(IntegrationTest, Figure3ShapeDetectionFailsOnAdaptive) {
  // The paper's applicability claim: Detection needs the attack's
  // signature; against the adaptive attack (inferred targets, no
  // crafted pattern) it falls behind LDPRecover, which needs nothing.
  ExperimentConfig config;
  config.protocol = ProtocolKind::kGrr;
  config.pipeline.attack = AttackKind::kAdaptive;
  config.trials = 5;
  config.seed = 13;
  const ExperimentResult r = RunExperiment(config, FullIpums());
  EXPECT_LT(r.mse_recover.mean(), r.mse_detection.mean());
  EXPECT_LT(r.mse_recover_star.mean(), r.mse_detection.mean());
}

TEST(IntegrationTest, Figure4ShapeFrequencyGainCrushed) {
  // FG after recovery drops to near zero; LDPRecover* can go negative.
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 5;
  config.seed = 4;
  const ExperimentResult r = RunExperiment(config, FullIpums());
  EXPECT_GT(r.fg_before.mean(), 0.1);  // the attack works
  // Recovery substantially reduces the attacker's gain, and partial
  // knowledge reduces it further (the paper's ordering in Figure 4).
  EXPECT_LT(r.fg_recover.mean(), 0.6 * r.fg_before.mean());
  EXPECT_LT(r.fg_recover_star.mean(), r.fg_recover.mean());
}

TEST(IntegrationTest, Figure7ShapeStarEstimatesMaliciousBetter) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kMga;
  config.trials = 5;
  config.seed = 5;
  const ExperimentResult r = RunExperiment(config, FullIpums());
  EXPECT_LT(r.mse_malicious_recover_star.mean(),
            r.mse_malicious_recover.mean());
}

TEST(IntegrationTest, AdaptiveAttackRecoveryAcrossProtocols) {
  for (ProtocolKind kind : kAllProtocolKinds) {
    ExperimentConfig config;
    config.protocol = kind;
    config.pipeline.attack = AttackKind::kAdaptive;
    config.trials = 3;
    config.seed = 6;
    config.run_detection = false;  // OLH detection streams per user
    const ExperimentResult r = RunExperiment(config, ScaledIpums());
    EXPECT_LT(r.mse_recover.mean(), r.mse_before.mean())
        << ProtocolKindName(kind);
  }
}

TEST(IntegrationTest, MultiAttackerRecoveryWorks) {
  // Figure 10's claim: LDPRecover handles five simultaneous adaptive
  // attackers as one mixture attacker.
  ExperimentConfig config;
  config.protocol = ProtocolKind::kGrr;
  config.pipeline.attack = AttackKind::kMultiAdaptive;
  config.pipeline.num_attackers = 5;
  config.pipeline.beta = 0.1;
  config.trials = 3;
  config.seed = 7;
  config.run_detection = false;
  const ExperimentResult r = RunExperiment(config, FullIpums());
  EXPECT_LT(r.mse_recover.mean(), 0.5 * r.mse_before.mean());
}

TEST(IntegrationTest, OutlierDetectorSuppliesStarKnowledge) {
  // The Section V-D loop: build per-epoch histories with the LDP
  // protocol, poison the final epoch with MGA, detect the targets as
  // outliers, and feed them to LDPRecover* — targets must be found.
  const Dataset ds = ScaledIpums();
  const size_t d = ds.domain_size();
  const auto proto = MakeProtocol(ProtocolKind::kOue, d, 0.5);
  Rng rng(8);

  std::vector<std::vector<double>> history;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto counts = proto->SampleSupportCounts(ds.item_counts, rng);
    history.push_back(proto->EstimateFrequencies(counts, ds.num_users()));
  }

  PipelineConfig pconfig;
  pconfig.attack = AttackKind::kMga;
  pconfig.beta = 0.05;
  const TrialOutput t = RunPoisoningTrial(*proto, pconfig, ds, rng);

  const std::vector<ItemId> detected =
      DetectFrequencyOutliers(history, t.poisoned_freqs);
  // Every true target is detected (MGA's boost is enormous), with at
  // most a few false positives.
  for (ItemId target : t.attack_targets) {
    EXPECT_NE(std::find(detected.begin(), detected.end(), target),
              detected.end());
  }
  EXPECT_LE(detected.size(), t.attack_targets.size() + 5);

  RecoverOptions opts;
  opts.known_targets = detected;
  const LdpRecover star(*proto, opts);
  const auto recovered = star.Recover(t.poisoned_freqs);
  EXPECT_TRUE(IsProbabilityVector(recovered, 1e-8));
  EXPECT_LT(Mse(t.true_freqs, recovered),
            Mse(t.true_freqs, t.poisoned_freqs));
}

TEST(IntegrationTest, Table1ShapeUnpoisonedRecoveryCost) {
  // On unpoisoned data LDPRecover leaves GRR roughly unchanged-or-
  // better while OUE/OLH (whose raw estimates are already excellent)
  // regress toward the recovery floor — Table I's pattern.  This is a
  // full-scale effect: at paper n the raw OUE/OLH MSE sits below the
  // floor the recovery step introduces.
  const Dataset ds = FullIpums();
  for (ProtocolKind kind : kAllProtocolKinds) {
    ExperimentConfig config;
    config.protocol = kind;
    config.pipeline.attack = AttackKind::kNone;
    config.trials = 3;
    config.seed = 9;
    const ExperimentResult r = RunExperiment(config, ds);
    if (kind == ProtocolKind::kGrr) {
      EXPECT_LT(r.mse_recover.mean(), 2.0 * r.mse_before.mean());
    } else {
      // The recovery step erases some of OUE/OLH's precision.
      EXPECT_GT(r.mse_recover.mean(), r.mse_before.mean());
    }
  }
}

}  // namespace
}  // namespace ldpr
