#include "ldp/olh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(OlhTest, DefaultGMatchesPaper) {
  // g = ceil(e^0.5 + 1) = ceil(2.6487) = 3.
  const Olh olh(100, 0.5);
  EXPECT_EQ(olh.g(), 3u);
  // g = ceil(e^1 + 1) = 4.
  EXPECT_EQ(Olh(100, 1.0).g(), 4u);
}

TEST(OlhTest, ExplicitGOverride) {
  const Olh olh(100, 0.5, /*g=*/8);
  EXPECT_EQ(olh.g(), 8u);
  EXPECT_DOUBLE_EQ(olh.q(), 1.0 / 8.0);
}

TEST(OlhTest, ProbabilitiesMatchEq9) {
  const Olh olh(100, 0.5);
  const double e = std::exp(0.5);
  const double g = olh.g();
  EXPECT_NEAR(olh.p(), e / (e + g - 1.0), 1e-12);
  EXPECT_NEAR(olh.q(), 1.0 / g, 1e-12);
  EXPECT_GT(olh.p(), olh.q());
}

TEST(OlhTest, ReportBucketInRange) {
  const Olh olh(50, 0.5);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Report r = olh.Perturb(17, rng);
    EXPECT_LT(r.value, olh.g());
  }
}

TEST(OlhTest, SupportsOwnItemWithP) {
  const Olh olh(50, 0.5);
  Rng rng(2);
  int hits = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i)
    hits += olh.Supports(olh.Perturb(9, rng), 9) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, olh.p(), 0.01);
}

TEST(OlhTest, SupportsOtherItemWithQ) {
  const Olh olh(50, 0.5);
  Rng rng(3);
  int hits = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i)
    hits += olh.Supports(olh.Perturb(9, rng), 31) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, olh.q(), 0.01);
}

TEST(OlhTest, AccumulateSupportsMatchesSupports) {
  const Olh olh(30, 0.5);
  Rng rng(4);
  const Report r = olh.Perturb(5, rng);
  std::vector<double> counts(30, 0.0);
  olh.AccumulateSupports(r, counts);
  for (ItemId v = 0; v < 30; ++v)
    EXPECT_DOUBLE_EQ(counts[v], olh.Supports(r, v) ? 1.0 : 0.0);
}

TEST(OlhTest, EstimationIsUnbiasedExactPath) {
  // Exact per-user simulation through Perturb/AccumulateSupports.
  const size_t d = 12;
  const Olh olh(d, 1.0);
  Rng rng(5);
  const size_t n = 30000;
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[2] = n / 3;
  item_counts[8] = 2 * n / 3;
  std::vector<double> counts(d, 0.0);
  for (ItemId item = 0; item < d; ++item) {
    for (uint64_t u = 0; u < item_counts[item]; ++u)
      olh.AccumulateSupports(olh.Perturb(item, rng), counts);
  }
  const auto freqs = olh.EstimateFrequencies(counts, n);
  EXPECT_NEAR(freqs[2], 1.0 / 3.0, 0.03);
  EXPECT_NEAR(freqs[8], 2.0 / 3.0, 0.03);
}

TEST(OlhTest, EstimationIsUnbiasedFastPath) {
  const size_t d = 12;
  const Olh olh(d, 1.0);
  Rng rng(6);
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[2] = 40000;
  item_counts[8] = 80000;
  const auto counts = olh.SampleSupportCounts(item_counts, rng);
  const auto freqs = olh.EstimateFrequencies(counts, 120000);
  EXPECT_NEAR(freqs[2], 1.0 / 3.0, 0.02);
  EXPECT_NEAR(freqs[8], 2.0 / 3.0, 0.02);
}

TEST(OlhTest, CraftSupportingReportAlwaysSupportsItem) {
  const Olh olh(64, 0.5);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const ItemId v = static_cast<ItemId>(rng.UniformU64(64));
    const Report r = olh.CraftSupportingReport(v, rng);
    EXPECT_TRUE(olh.Supports(r, v));
  }
}

TEST(OlhTest, CraftedReportSupportsOthersAtRateQ) {
  // A crafted OLH report looks like a genuine one for non-chosen
  // items: it supports them at rate ~1/g.
  const Olh olh(64, 0.5);
  Rng rng(8);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const Report r = olh.CraftSupportingReport(3, rng);
    hits += olh.Supports(r, 40) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, olh.q(), 0.015);
}

TEST(OlhTest, HashIsDeterministicPerSeed) {
  const Olh olh(100, 0.5);
  EXPECT_EQ(olh.Hash(123, 45), olh.Hash(123, 45));
}

TEST(OlhTest, CountVarianceCloseToEq10) {
  // With the default g, the generic q(1-q)/(p-q)^2 variance is within
  // a modest factor of Eq. (10)'s idealized 4e^eps/(e^eps-1)^2 (the
  // gap is the integrality of g).
  const double eps = 0.5;
  const Olh olh(100, eps);
  const double e = std::exp(eps);
  const double ideal = 1000.0 * 4.0 * e / ((e - 1.0) * (e - 1.0));
  const double actual = olh.CountVariance(0.1, 1000);
  EXPECT_GT(actual, 0.5 * ideal);
  EXPECT_LT(actual, 2.0 * ideal);
}

}  // namespace
}  // namespace ldpr
