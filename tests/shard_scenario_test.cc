// Locks on the shard_fault_* scenarios: run-to-run byte determinism
// (the same-process half of the ctest determinism gate) and the
// contracted fault observables — duplicate delivery drifts the merged
// counts by exactly zero, every torn/bit-flipped line is rejected,
// and shard loss strictly degrades nothing at loss fraction 0.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/result_sink.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"

namespace ldpr {
namespace bench {
namespace {

class ShardScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllScenarios(); }
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string RunToCsv(const Scenario& scenario, const std::string& path) {
  std::vector<std::unique_ptr<ResultSink>> sinks;
  sinks.push_back(std::make_unique<CsvSink>(path));
  MultiSink sink(std::move(sinks));
  ScenarioRunOptions options;
  options.seed = 424242;
  options.trials = 2;
  options.scale = 0.01;
  const auto report = RunScenario(scenario, options, sink);
  EXPECT_TRUE(report.ok()) << scenario.spec.id << ": "
                           << report.status().ToString();
  EXPECT_TRUE(sink.Finish().ok());
  return ReadFileOrDie(path);
}

TEST_F(ShardScenarioTest, DoubleRunIsByteIdentical) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ldpr_shard_det").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  for (const char* id : {"shard_fault_loss", "shard_fault_mixed"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(id);
    ASSERT_NE(scenario, nullptr) << id;
    const std::string first = RunToCsv(*scenario, dir + "/a.csv");
    const std::string second = RunToCsv(*scenario, dir + "/b.csv");
    EXPECT_FALSE(first.empty()) << id;
    EXPECT_EQ(first, second) << id << " is not run-to-run deterministic";
  }
  std::filesystem::remove_all(dir);
}

class RecordingSink : public ResultSink {
 public:
  struct Row {
    std::string label;
    std::vector<double> values;
  };

  void BeginTable(const std::string& /*title*/,
                  const std::vector<std::string>& columns) override {
    columns_ = columns;
  }
  void AddRow(const std::string& label,
              const std::vector<double>& values) override {
    rows_.push_back({label, values});
  }
  Status Finish() override { return Status::Ok(); }

  double Value(const Row& row, const std::string& column) const {
    const auto it = std::find(columns_.begin(), columns_.end(), column);
    EXPECT_NE(it, columns_.end()) << column;
    return row.values[static_cast<size_t>(it - columns_.begin())];
  }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

void RunToSink(const char* id, RecordingSink& sink) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(id);
  ASSERT_NE(scenario, nullptr) << id;
  ScenarioRunOptions options;
  options.seed = 7;
  options.trials = 2;
  options.scale = 0.01;
  const auto report = RunScenario(*scenario, options, sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

TEST_F(ShardScenarioTest, MixedFaultObservablesHoldExactly) {
  RecordingSink sink;
  RunToSink("shard_fault_mixed", sink);
  ASSERT_EQ(sink.rows().size(), 5u);  // one row per extended protocol
  for (const RecordingSink::Row& row : sink.rows()) {
    // Duplicate delivery merges idempotently: zero count drift.
    EXPECT_EQ(sink.Value(row, "DupDrift"), 0.0) << row.label;
    // The wire layer catches every torn line and every flipped bit.
    EXPECT_EQ(sink.Value(row, "TornRej"), 1.0) << row.label;
    EXPECT_EQ(sink.Value(row, "FlipRej"), 1.0) << row.label;
    // A quarter of the fleet straggling loses a nonzero chunk
    // fraction, but never the majority of the data.
    const double loss = sink.Value(row, "StragLoss");
    EXPECT_GT(loss, 0.0) << row.label;
    EXPECT_LT(loss, 0.5) << row.label;
    // The combined-fault estimate still comes back finite.
    EXPECT_TRUE(std::isfinite(sink.Value(row, "FaultMSE"))) << row.label;
  }
}

TEST_F(ShardScenarioTest, LossSweepDegradesWithLostShards) {
  RecordingSink sink;
  RunToSink("shard_fault_loss", sink);
  ASSERT_EQ(sink.rows().size(), 5u);
  for (const RecordingSink::Row& row : sink.rows()) {
    // Zero loss is the healthy pipeline: finite estimates all around.
    EXPECT_TRUE(std::isfinite(sink.Value(row, "GenL0"))) << row.label;
    EXPECT_TRUE(std::isfinite(sink.Value(row, "MgaL0"))) << row.label;
    EXPECT_TRUE(std::isfinite(sink.Value(row, "RecL0"))) << row.label;
    // Losing half the shards hurts the genuine estimate.
    EXPECT_GT(sink.Value(row, "GenL50"), sink.Value(row, "GenL0"))
        << row.label;
  }
}

}  // namespace
}  // namespace bench
}  // namespace ldpr
