// util/json_reader: the parser must round-trip everything our own
// JsonWriter emits (manifests, JSONL rows) and reject malformed
// input with positioned errors.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "util/json_reader.h"
#include "util/json_writer.h"

namespace ldpr {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->number(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-1e-3")->number(), -1e-3);
  EXPECT_EQ(ParseJson("\"hi\"")->string(), "hi");
}

TEST(JsonReaderTest, ParsesContainersPreservingOrder) {
  const auto v = ParseJson(
      R"({"b":1,"a":[2,"x",null,{"nested":true}],"c":{}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->object().size(), 3u);
  EXPECT_EQ(v->object()[0].first, "b");
  EXPECT_EQ(v->object()[1].first, "a");
  EXPECT_EQ(v->object()[2].first, "c");
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 4u);
  EXPECT_DOUBLE_EQ(a->array()[0].number(), 2);
  EXPECT_EQ(a->array()[1].string(), "x");
  EXPECT_TRUE(a->array()[2].is_null());
  EXPECT_TRUE(a->array()[3].Find("nested")->bool_value());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonReaderTest, TypedAccessorsFallBack) {
  const auto v = ParseJson(R"({"n":2.5,"s":"str"})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->NumberOr("n", -1), 2.5);
  EXPECT_DOUBLE_EQ(v->NumberOr("absent", -1), -1);
  EXPECT_DOUBLE_EQ(v->NumberOr("s", -1), -1);  // wrong type
  EXPECT_EQ(v->StringOr("s", "fb"), "str");
  EXPECT_EQ(v->StringOr("n", "fb"), "fb");
}

TEST(JsonReaderTest, StringEscapes) {
  const auto v = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string(), "a\"b\\c\n\tA");
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("scenario");
  w.String("fig3");
  w.Key("values");
  w.BeginObject();
  w.Key("Before");
  w.Number(0.07028093504080245);
  w.Key("NaN-col");
  w.Number(std::nan(""));  // rendered as null
  w.EndObject();
  w.EndObject();
  const auto v = ParseJson(w.str());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* values = v->Find("values");
  ASSERT_NE(values, nullptr);
  // Shortest-round-trip doubles parse back to the identical bits.
  EXPECT_EQ(values->Find("Before")->number(), 0.07028093504080245);
  EXPECT_TRUE(values->Find("NaN-col")->is_null());
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("12x").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson(R"({"dup":1,"dup":2})").ok());
  // Errors carry a byte offset.
  const auto err = ParseJson("[1, oops]");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("byte 4"), std::string::npos)
      << err.status().ToString();
}

}  // namespace
}  // namespace ldpr
