// Locks in the batched *generation* contract of this layer:
//
//  * AppendGenuineReports / SampleReportsBatch and every attack
//    CraftBatch draw exactly the same randomness, in the same order,
//    as the per-report Perturb / Craft code they replace — so the
//    support counts are byte-identical and the caller's Rng stream
//    position is unchanged by the switch;
//  * batch sizes straddling the kBatchFlushReports and
//    kReportsPerAggregationShard boundaries (8191/8192/8193) agree
//    across the unsharded and sharded aggregation routes;
//  * every SIMD kernel is bit-equal to its scalar reference on every
//    backend the running machine offers (SetSimdBackendForTest);
//  * the exact-arithmetic building blocks (FastMod, the split 8-byte
//    xxHash) match their generic counterparts on extreme inputs.

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "attack/attack.h"
#include "attack/ipa.h"
#include "attack/manip.h"
#include "attack/mga.h"
#include "ldp/factory.h"
#include "ldp/protocol.h"
#include "ldp/report_batch.h"
#include "recover/detection.h"
#include "util/hash_family.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/xxhash.h"

namespace ldpr {
namespace {

// A small synthetic population histogram with empty and heavy rows.
std::vector<uint64_t> MakeItemCounts(size_t d, uint64_t total) {
  std::vector<uint64_t> counts(d, 0);
  Rng rng(total + d);
  for (uint64_t u = 0; u < total; ++u)
    ++counts[static_cast<size_t>(rng.UniformU64(d))];
  counts[0] = 0;  // ensure an empty row
  return counts;
}

std::vector<double> PerReportCounts(const FrequencyProtocol& proto,
                                    const std::vector<Report>& reports) {
  std::vector<double> counts(proto.domain_size(), 0.0);
  for (const Report& r : reports) proto.AccumulateSupports(r, counts);
  return counts;
}

// Legacy reference: per-user Perturb in the canonical order (users
// grouped by item, items ascending).
std::vector<Report> PerturbPopulation(const FrequencyProtocol& proto,
                                      const std::vector<uint64_t>& item_counts,
                                      Rng& rng) {
  std::vector<Report> reports;
  for (ItemId item = 0; item < item_counts.size(); ++item) {
    for (uint64_t u = 0; u < item_counts[item]; ++u)
      reports.push_back(proto.Perturb(item, rng));
  }
  return reports;
}

TEST(ReportGenBatchTest, GenuineBuilderMatchesPerturbForAllProtocols) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, /*d=*/37, /*epsilon=*/1.0);
    const std::vector<uint64_t> item_counts = MakeItemCounts(37, 523);

    Rng legacy_rng(41), builder_rng(41);
    const std::vector<Report> reports =
        PerturbPopulation(*proto, item_counts, legacy_rng);

    ReportBatch batch;
    ReportBatch::Builder builder(batch);
    proto->SampleReportsBatch(item_counts, builder_rng, builder);
    ASSERT_EQ(batch.size(), reports.size()) << ProtocolKindName(kind);

    std::vector<double> batched(proto->domain_size(), 0.0);
    proto->AccumulateSupportsBatch(batch, batched);
    EXPECT_EQ(batched, PerReportCounts(*proto, reports))
        << ProtocolKindName(kind);
    // The generation overrides replace only materialization, never the
    // draw sequence: both streams must sit at the same position.
    EXPECT_EQ(legacy_rng.Next(), builder_rng.Next()) << ProtocolKindName(kind);
  }
}

TEST(ReportGenBatchTest, ExactSupportCountsMatchesPerturbLoop) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, /*d=*/23, /*epsilon=*/0.8);
    const std::vector<uint64_t> item_counts = MakeItemCounts(23, 700);

    Rng legacy_rng(7), batch_rng(7);
    const std::vector<double> reference = PerReportCounts(
        *proto, PerturbPopulation(*proto, item_counts, legacy_rng));
    EXPECT_EQ(proto->ExactSupportCounts(item_counts, batch_rng), reference)
        << ProtocolKindName(kind);
    EXPECT_EQ(legacy_rng.Next(), batch_rng.Next()) << ProtocolKindName(kind);
  }
}

// Runs one attack through Craft and CraftBatch on identical Rng
// streams and requires byte-identical support counts plus an
// identical stream position afterwards.
void ExpectCraftBatchMatchesCraft(const Attack& attack,
                                  const FrequencyProtocol& proto, size_t m,
                                  uint64_t seed) {
  Rng legacy_rng(seed), batch_rng(seed);
  const std::vector<Report> reports = attack.Craft(proto, m, legacy_rng);

  ReportBatch batch;
  ReportBatch::Builder builder(batch);
  attack.CraftBatch(proto, m, batch_rng, builder);
  ASSERT_EQ(batch.size(), m);

  std::vector<double> batched(proto.domain_size(), 0.0);
  proto.AccumulateSupportsBatch(batch, batched);
  EXPECT_EQ(batched, PerReportCounts(proto, reports))
      << attack.Name() << " on " << proto.Name();
  EXPECT_EQ(legacy_rng.Next(), batch_rng.Next())
      << attack.Name() << " on " << proto.Name();
}

TEST(ReportGenBatchTest, AttackCraftBatchMatchesCraftForAllProtocols) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, /*d=*/31, /*epsilon=*/1.0);
    const std::vector<ItemId> targets = {2, 9, 17, 30};
    ExpectCraftBatchMatchesCraft(MgaAttack(targets), *proto, 400, 13);
    ExpectCraftBatchMatchesCraft(*MakeMgaIpa(31, targets), *proto, 400, 17);
    ExpectCraftBatchMatchesCraft(ManipAttack(), *proto, 400, 19);
  }
}

TEST(ReportGenBatchTest, BuilderBatchesAgreeAcrossShardChunkBoundaries) {
  // 8191/8192/8193 straddle both kReportsPerAggregationShard (8192)
  // and multiples of kBatchFlushReports (4096).
  static_assert(kReportsPerAggregationShard == 8192,
                "sizes below straddle the shard chunk size");
  for (ProtocolKind kind : {ProtocolKind::kGrr, ProtocolKind::kOue,
                            ProtocolKind::kOlh}) {
    const auto proto = MakeProtocol(kind, /*d=*/19, /*epsilon=*/1.0);
    for (size_t m : {size_t{8191}, size_t{8192}, size_t{8193}}) {
      Rng rng(m);
      const MgaAttack mga(MgaAttack::SampleTargets(19, 4, rng));
      ReportBatch batch;
      ReportBatch::Builder builder(batch);
      mga.CraftBatch(*proto, m, rng, builder);

      Aggregator unsharded(*proto);
      unsharded.AddAll(batch);
      for (size_t shards : {size_t{1}, size_t{3}}) {
        Aggregator sharded(*proto);
        sharded.AddAllSharded(batch, shards);
        EXPECT_EQ(sharded.support_counts(), unsharded.support_counts())
            << ProtocolKindName(kind) << " m=" << m << " shards=" << shards;
        EXPECT_EQ(sharded.report_count(), m);
      }
    }
  }
}

TEST(ReportGenBatchTest, DetectionExactGenuineMatchesPerUserOffer) {
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto proto = MakeProtocol(kind, /*d=*/29, /*epsilon=*/1.0);
    const std::vector<ItemId> targets = {3, 11, 20};
    const std::vector<uint64_t> item_counts = MakeItemCounts(29, 600);

    Rng legacy_rng(3), batch_rng(3);
    DetectionFilter per_user(*proto, targets);
    for (const Report& r :
         PerturbPopulation(*proto, item_counts, legacy_rng)) {
      per_user.Offer(r);
    }
    DetectionFilter batched(*proto, targets);
    batched.OfferExactGenuine(item_counts, batch_rng);

    EXPECT_EQ(batched.offered(), per_user.offered()) << ProtocolKindName(kind);
    EXPECT_EQ(batched.kept(), per_user.kept()) << ProtocolKindName(kind);
    ASSERT_GT(batched.kept(), 0u) << ProtocolKindName(kind);
    EXPECT_EQ(batched.Estimate(), per_user.Estimate())
        << ProtocolKindName(kind);
    EXPECT_EQ(legacy_rng.Next(), batch_rng.Next()) << ProtocolKindName(kind);
  }
}

// ------------------------------------------------------------------
// SIMD kernels: every backend available on this machine must be
// bit-equal to the scalar reference on every kernel.

std::vector<SimdBackend> TestableBackends() {
  std::vector<SimdBackend> backends = {SimdBackend::kScalar};
  // ActiveSimdBackend() only reports backends the machine supports,
  // so it is always safe to pin.
  if (ActiveSimdBackend() != SimdBackend::kScalar)
    backends.push_back(ActiveSimdBackend());
  return backends;
}

class ScopedBackend {
 public:
  explicit ScopedBackend(SimdBackend backend) {
    SetSimdBackendForTest(backend);
  }
  ~ScopedBackend() { ClearSimdBackendForTest(); }
};

TEST(SimdKernelTest, UnaryColumnsMatchScalarAcrossBackends) {
  Rng rng(101);
  for (size_t d : {size_t{7}, size_t{64}, size_t{100}}) {
    // Sizes around the 255-row byte-lane sub-tile and vector widths.
    for (size_t n : {size_t{0}, size_t{1}, size_t{254}, size_t{255},
                     size_t{256}, size_t{1000}}) {
      std::vector<uint8_t> rows(n * d);
      for (uint8_t& b : rows) b = rng.Bernoulli(0.3) ? 1 : 0;
      std::vector<const uint8_t*> ptrs(n);
      for (size_t i = 0; i < n; ++i) ptrs[i] = rows.data() + i * d;

      std::vector<uint32_t> reference(d, 5);  // nonzero carry-in
      {
        ScopedBackend scalar(SimdBackend::kScalar);
        SimdUnaryColumnsAddPacked(rows.data(), n, d, reference.data());
      }
      for (SimdBackend backend : TestableBackends()) {
        ScopedBackend scoped(backend);
        std::vector<uint32_t> packed(d, 5);
        SimdUnaryColumnsAddPacked(rows.data(), n, d, packed.data());
        EXPECT_EQ(packed, reference)
            << SimdBackendName(backend) << " packed n=" << n << " d=" << d;
        std::vector<uint32_t> via_rows(d, 5);
        SimdUnaryColumnsAddRows(ptrs.data(), n, d, via_rows.data());
        EXPECT_EQ(via_rows, reference)
            << SimdBackendName(backend) << " rows n=" << n << " d=" << d;
      }
    }
  }
}

TEST(SimdKernelTest, ValueHistogramMatchesScalarAcrossBackends) {
  Rng rng(202);
  const size_t d = 50;
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                   size_t{10007}}) {
    std::vector<uint32_t> values(n);
    for (uint32_t& v : values) v = static_cast<uint32_t>(rng.UniformU64(d));
    std::vector<uint64_t> reference(d, 2);  // nonzero carry-in
    {
      ScopedBackend scalar(SimdBackend::kScalar);
      SimdValueHistogramAdd(values.data(), n, d, reference.data());
    }
    for (SimdBackend backend : TestableBackends()) {
      ScopedBackend scoped(backend);
      std::vector<uint64_t> hist(d, 2);
      SimdValueHistogramAdd(values.data(), n, d, hist.data());
      EXPECT_EQ(hist, reference) << SimdBackendName(backend) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, OlhSupportMatchesScalarAcrossBackends) {
  Rng rng(303);
  const size_t d = 33;
  for (uint32_t g : {2u, 4u, 3u, 7u}) {  // pow2 and non-pow2 ranges
    for (size_t n : {size_t{0}, size_t{1}, size_t{255}, size_t{256},
                     size_t{257}, size_t{1000}}) {
      std::vector<uint64_t> seeds(n);
      std::vector<uint32_t> values(n);
      for (size_t i = 0; i < n; ++i) {
        seeds[i] = rng.Next();
        values[i] = static_cast<uint32_t>(rng.UniformU64(g));
      }
      std::vector<double> reference(d, 1.0);  // nonzero carry-in
      {
        ScopedBackend scalar(SimdBackend::kScalar);
        SimdOlhSupportAdd(seeds.data(), values.data(), n, d, g,
                          reference.data());
      }
      for (SimdBackend backend : TestableBackends()) {
        ScopedBackend scoped(backend);
        std::vector<double> counts(d, 1.0);
        SimdOlhSupportAdd(seeds.data(), values.data(), n, d, g, counts.data());
        EXPECT_EQ(counts, reference)
            << SimdBackendName(backend) << " g=" << g << " n=" << n;
      }
    }
  }
}

// ------------------------------------------------------------------
// Exact-arithmetic building blocks.

TEST(FastModTest, MatchesModuloOnExtremesAndRandomInputs) {
  Rng rng(404);
  const uint64_t max64 = ~uint64_t{0};
  for (uint64_t g : {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{4},
                     uint64_t{5}, uint64_t{7}, uint64_t{8}, uint64_t{1023},
                     uint64_t{1024}, uint64_t{1} << 31,
                     (uint64_t{1} << 31) + 1, (uint64_t{1} << 63) - 25,
                     uint64_t{1} << 63, max64}) {
    const FastMod mod(g);
    EXPECT_EQ(mod.divisor(), g);
    for (uint64_t x : {uint64_t{0}, uint64_t{1}, g - 1, g, g + 1, max64 - 1,
                       max64}) {
      EXPECT_EQ(mod(x), x % g) << "g=" << g << " x=" << x;
    }
    for (int i = 0; i < 1000; ++i) {
      const uint64_t x = rng.Next();
      EXPECT_EQ(mod(x), x % g) << "g=" << g << " x=" << x;
    }
  }
}

TEST(XxHash64Key8Test, MatchesGeneralPath) {
  Rng rng(505);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = (i < 4) ? uint64_t(i) : rng.Next();
    const uint64_t seed = (i % 3 == 0) ? 0 : rng.Next();
    const uint64_t expected = XxHash64(&key, sizeof(key), seed);
    EXPECT_EQ(XxHash64Key8(key, seed), expected);
    EXPECT_EQ(XxHash64(key, seed), expected);
    EXPECT_EQ(XxHash64Key8WithRound0(XxHash64Round0(key),
                                     XxHash64SeedAcc(seed)),
              expected);
  }
}

}  // namespace
}  // namespace ldpr
