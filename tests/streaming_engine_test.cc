// Batch-equivalence lock on the streaming ingest engine: a single
// window spanning the whole stream must reproduce the batch path —
// Aggregator::AddAllSharded on the replayed report batch — byte for
// byte, because both sides add the same integer support indicators
// in regroupable order (ldp/report_batch.h).  Also locks the
// sliding-window pane decomposition (every emitted window equals a
// naive recompute over its report range), the window metadata
// sequences, the bounded-memory witness, and the engine-level
// detection verdicts.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "stream/streaming_engine.h"
#include "util/random.h"

namespace ldpr {
namespace {

// A small skewed histogram over d items summing to `total` reports'
// worth of genuine mass (the attacker quota displaces arrivals, not
// histogram mass — arrivals *draw from* this distribution).
std::vector<uint64_t> SkewedCounts(size_t d) {
  std::vector<uint64_t> counts(d);
  for (size_t v = 0; v < d; ++v) counts[v] = 1 + (d - v) * (d - v);
  return counts;
}

StreamSpec SingleWindowSpec(size_t total, size_t d) {
  StreamSpec spec;
  spec.total_reports = total;
  spec.window_reports = total;
  spec.item_counts = SkewedCounts(d);
  spec.wave = WaveShape::kConstant;
  spec.attacker_fraction = 0.05;
  spec.num_targets = 5;
  return spec;
}

// The ISSUE's equivalence matrix: five factory protocols x shard
// counts 1/2/8 x stream totals straddling the 8192-report aggregation
// shard edge.
TEST(StreamingEngineTest, SingleWindowMatchesAddAllShardedByteExact) {
  const size_t kTotals[] = {8191, 8192, 8193};
  const size_t kShards[] = {1, 2, 8};
  const size_t d = 24;
  const double epsilon = 1.0;

  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const std::unique_ptr<FrequencyProtocol> protocol =
        MakeProtocol(kind, d, epsilon);
    for (size_t total : kTotals) {
      const StreamSpec spec = SingleWindowSpec(total, d);
      const uint64_t seed = DeriveSeed(20240808, total);

      StreamEngineOptions options;
      options.run_recovery = false;
      const StreamSummary summary = RunStream(*protocol, spec, options, seed);
      ASSERT_EQ(summary.total_reports, total);
      ASSERT_EQ(summary.windows.size(), 1u);
      EXPECT_EQ(summary.windows[0].first_report, 0u);
      EXPECT_EQ(summary.windows[0].report_count, total);

      // The batch side: replay the identical arrival schedule and
      // aggregate through the sharded batch path.
      const StreamReplay replay = ReplayStream(*protocol, spec, seed);
      ASSERT_EQ(replay.reports.size(), total);
      for (size_t shards : kShards) {
        Aggregator aggregator(*protocol);
        aggregator.AddAllSharded(replay.reports, shards);
        const std::vector<double>& batch = aggregator.support_counts();
        ASSERT_EQ(batch.size(), d);
        for (size_t v = 0; v < d; ++v) {
          // Byte-identical, not approximately equal: exact integer
          // sums admit no tolerance.
          EXPECT_EQ(summary.final_support_counts[v], batch[v])
              << ProtocolKindName(kind) << " total=" << total
              << " shards=" << shards << " item=" << v;
          EXPECT_EQ(summary.windows[0].support_counts[v], batch[v]);
        }
      }
      // The replay's ground truth matches the engine's.
      uint64_t attackers = 0;
      for (uint8_t flag : replay.is_attacker) attackers += flag;
      EXPECT_EQ(summary.total_attackers, attackers);
      EXPECT_EQ(summary.final_genuine_tally, replay.genuine_item_counts);
    }
  }
}

TEST(StreamingEngineTest, SlidingWindowsMatchNaiveRangeRecompute) {
  const size_t d = 16;
  const size_t total = 5000;
  StreamSpec spec = SingleWindowSpec(total, d);
  spec.window_reports = 1000;
  spec.stride_reports = 500;
  const uint64_t seed = 12345;

  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const std::unique_ptr<FrequencyProtocol> protocol =
        MakeProtocol(kind, d, 1.0);
    StreamEngineOptions options;
    options.run_recovery = false;
    const StreamSummary summary = RunStream(*protocol, spec, options, seed);
    const StreamReplay replay = ReplayStream(*protocol, spec, seed);

    // W=1000, S=500 over 5000 reports: windows [0,1000), [500,1500),
    // ..., [4000,5000) — 9 windows, last snapshot covered, no tail.
    ASSERT_EQ(summary.windows.size(), 9u);
    for (size_t w = 0; w < summary.windows.size(); ++w) {
      const WindowResult& window = summary.windows[w];
      EXPECT_EQ(window.first_report, w * 500);
      EXPECT_EQ(window.report_count, 1000u);

      // Naive recompute: aggregate exactly the window's report range.
      Aggregator naive(*protocol);
      naive.AddAll(replay.reports.Slice(window.first_report,
                                        window.first_report +
                                            window.report_count));
      for (size_t v = 0; v < d; ++v) {
        EXPECT_EQ(window.support_counts[v], naive.support_counts()[v])
            << ProtocolKindName(kind) << " window=" << w << " item=" << v;
      }
      // Attacker count per window matches the replay flags.
      size_t attackers = 0;
      for (size_t i = window.first_report;
           i < window.first_report + window.report_count; ++i) {
        attackers += replay.is_attacker[i];
      }
      EXPECT_EQ(window.attackers, attackers);
    }
  }
}

TEST(StreamingEngineTest, TumblingWindowsPartitionTheStreamExactly) {
  const size_t d = 12;
  StreamSpec spec = SingleWindowSpec(2750, d);  // partial final window
  spec.window_reports = 500;
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(ProtocolKind::kOue, d, 0.8);
  StreamEngineOptions options;
  options.run_recovery = false;
  const StreamSummary summary = RunStream(*protocol, spec, options, 777);

  ASSERT_EQ(summary.windows.size(), 6u);  // 5 full + 1 partial (250)
  size_t covered = 0;
  std::vector<double> summed(d, 0.0);
  size_t attackers = 0;
  for (const WindowResult& w : summary.windows) {
    EXPECT_EQ(w.first_report, covered);
    covered += w.report_count;
    attackers += w.attackers;
    for (size_t v = 0; v < d; ++v) summed[v] += w.support_counts[v];
  }
  EXPECT_EQ(covered, 2750u);
  EXPECT_EQ(summary.windows.back().report_count, 250u);
  EXPECT_EQ(attackers, summary.total_attackers);
  // Per-window counts sum back to the stream totals bit for bit.
  for (size_t v = 0; v < d; ++v) {
    EXPECT_EQ(summed[v], summary.final_support_counts[v]);
  }
}

TEST(StreamingEngineTest, BufferedReportsNeverExceedFlushSlack) {
  const size_t d = 8;
  StreamSpec spec = SingleWindowSpec(20000, d);  // windows >> flush size
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(ProtocolKind::kGrr, d, 1.0);
  StreamEngineOptions options;
  options.run_recovery = false;
  const StreamSummary summary = RunStream(*protocol, spec, options, 5);
  EXPECT_GT(summary.peak_buffered_reports, 0u);
  EXPECT_LE(summary.peak_buffered_reports, kBatchFlushReports);
}

TEST(StreamingEngineTest, WaveIsDetectedAndCleanStreamReportsSentinel) {
  const size_t d = 64;
  const size_t total = 4000;
  StreamSpec clean;
  clean.total_reports = total;
  clean.window_reports = 400;
  clean.item_counts = SkewedCounts(d);
  clean.wave = WaveShape::kNone;
  clean.num_targets = 10;

  StreamSpec wave = clean;
  wave.wave = WaveShape::kWave;
  wave.attacker_fraction = 0.3;
  wave.wave_start = total / 2;
  wave.wave_end = total;

  // OUE's all-targets rule has a ~q^10 genuine base rate: essentially
  // zero, so the wave windows separate cleanly at any seed.
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(ProtocolKind::kOue, d, 0.5);
  StreamEngineOptions options;
  options.detect_fraction =
      ApproxGenuineSuspicionRate(*protocol, clean.num_targets) + 0.15;
  options.run_recovery = false;

  const StreamSummary clean_run = RunStream(*protocol, clean, options, 99);
  EXPECT_EQ(clean_run.windows_to_detection, kNoDetection);
  EXPECT_EQ(clean_run.total_attackers, 0u);

  const StreamSummary wave_run = RunStream(*protocol, wave, options, 99);
  EXPECT_GT(wave_run.total_attackers, 0u);
  ASSERT_NE(wave_run.windows_to_detection, kNoDetection);
  // Onset at report 2000 = window 5; MGA at 30% trips the very first
  // attacked window.
  EXPECT_EQ(wave_run.windows_to_detection, 1);
  // Pre-onset windows are quiet, attacked windows flagged.
  for (const WindowResult& w : wave_run.windows) {
    if (w.first_report + w.report_count <= wave.wave_start) {
      EXPECT_FALSE(w.detected) << "window " << w.index;
    } else {
      EXPECT_TRUE(w.detected) << "window " << w.index;
    }
  }
}

TEST(StreamingEngineTest, SpecValidationRejectsStructuralNonsense) {
  StreamSpec spec = SingleWindowSpec(100, 8);
  EXPECT_TRUE(ValidateStreamSpec(spec).ok());

  StreamSpec bad = spec;
  bad.total_reports = 0;
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  bad = spec;
  bad.stride_reports = 30;  // does not divide window=100
  bad.window_reports = 100;
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  bad = spec;
  bad.stride_reports = 200;  // exceeds window
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  bad = spec;
  bad.attacker_fraction = 1.0;
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  bad = spec;
  bad.wave = WaveShape::kWave;
  bad.wave_start = 60;
  bad.wave_end = 150;  // past the stream end
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  bad = spec;
  bad.num_targets = 9;  // exceeds the domain of 8
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  bad = spec;
  bad.item_counts.clear();  // no item source at all
  EXPECT_FALSE(ValidateStreamSpec(bad).ok());

  // Drifting-zipf mode validates its own fields.
  StreamSpec drift;
  drift.total_reports = 100;
  drift.window_reports = 10;
  drift.domain_size = 16;
  drift.zipf_segments = 4;
  drift.zipf_s_start = 1.5;
  drift.zipf_s_end = 0.5;
  EXPECT_TRUE(ValidateStreamSpec(drift).ok());
  drift.item_counts = {1, 2, 3};  // both modes at once
  EXPECT_FALSE(ValidateStreamSpec(drift).ok());
}

}  // namespace
}  // namespace ldpr
