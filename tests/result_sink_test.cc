// Golden-file coverage for the machine-readable result sinks: the
// exact bytes CsvSink and JsonlSink emit for a fixed row stream are
// part of the --out contract (figure-regeneration scripts and the
// determinism harness diff them), so they are pinned here, along with
// the partial-write error model and the JSON emitter underneath.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/result_sink.h"
#include "util/json_writer.h"

namespace ldpr {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ScenarioRunInfo TestInfo() {
  ScenarioRunInfo info;
  info.id = "golden";
  info.title = "golden scenario";
  return info;
}

// The fixed row stream both golden tests feed their sink.
void EmitGoldenRows(ResultSink& sink) {
  sink.BeginScenario(TestInfo());
  sink.BeginTable("Table A", {"MSE", "FG"});
  sink.AddRow("MGA-GRR", {0.5, 1.0 / 3.0});
  sink.AddRow("AA, OUE", {6.25e-05, -0.125});  // comma forces CSV quoting
  sink.EndTable();
  sink.BeginTable("Table B", {"MSE", "FG"});  // same columns: no new header
  sink.AddRow("beta=0.05", {1e300, 0.0});
  sink.EndTable();
  sink.BeginTable("Table C", {"Before"});  // new columns: fresh header
  sink.AddRow("row \"q\"", {2.0});
  sink.EndTable();
}

TEST(CsvSinkTest, GoldenBytes) {
  const std::string path = TempPath("ldpr_sink_golden.csv");
  CsvSink sink(path);
  ASSERT_TRUE(sink.ok());
  EmitGoldenRows(sink);
  ASSERT_TRUE(sink.Finish().ok());

  EXPECT_EQ(ReadAll(path),
            "scenario,table,row,MSE,FG\n"
            "golden,Table A,MGA-GRR,0.5,0.3333333333333333\n"
            "golden,Table A,\"AA, OUE\",6.25e-05,-0.125\n"
            "golden,Table B,beta=0.05,1e+300,0\n"
            "scenario,table,row,Before\n"
            "golden,Table C,\"row \"\"q\"\"\",2\n");
  std::filesystem::remove(path);
}

TEST(JsonlSinkTest, GoldenBytes) {
  const std::string path = TempPath("ldpr_sink_golden.jsonl");
  JsonlSink sink(path);
  ASSERT_TRUE(sink.ok());
  EmitGoldenRows(sink);
  ASSERT_TRUE(sink.Finish().ok());

  EXPECT_EQ(
      ReadAll(path),
      "{\"scenario\":\"golden\",\"table\":\"Table A\",\"row\":\"MGA-GRR\","
      "\"values\":{\"MSE\":0.5,\"FG\":0.3333333333333333}}\n"
      "{\"scenario\":\"golden\",\"table\":\"Table A\",\"row\":\"AA, OUE\","
      "\"values\":{\"MSE\":6.25e-05,\"FG\":-0.125}}\n"
      "{\"scenario\":\"golden\",\"table\":\"Table B\",\"row\":\"beta=0.05\","
      "\"values\":{\"MSE\":1e+300,\"FG\":0}}\n"
      "{\"scenario\":\"golden\",\"table\":\"Table C\",\"row\":\"row "
      "\\\"q\\\"\",\"values\":{\"Before\":2}}\n");
  std::filesystem::remove(path);
}

TEST(ResultSinkTest, FinishFailsWhenFileCannotOpen) {
  CsvSink csv("/nonexistent-dir/x/results.csv");
  EXPECT_FALSE(csv.ok());
  EXPECT_FALSE(csv.Finish().ok());
  JsonlSink jsonl("/nonexistent-dir/x/results.jsonl");
  EXPECT_FALSE(jsonl.ok());
  EXPECT_FALSE(jsonl.Finish().ok());
}

TEST(ResultSinkTest, MultiSinkFansOutAndAggregatesErrors) {
  const std::string path = TempPath("ldpr_sink_multi.csv");
  {
    std::vector<std::unique_ptr<ResultSink>> sinks;
    sinks.push_back(std::make_unique<CsvSink>(path));
    sinks.push_back(std::make_unique<CsvSink>("/nonexistent-dir/x.csv"));
    MultiSink sink(std::move(sinks));
    sink.BeginScenario(TestInfo());
    sink.BeginTable("T", {"v"});
    sink.AddRow("r", {1.0});
    sink.EndTable();
    // The healthy child wrote; the broken child surfaces the error.
    EXPECT_FALSE(sink.Finish().ok());
  }
  EXPECT_EQ(ReadAll(path),
            "scenario,table,row,v\n"
            "golden,T,r,1\n");
  std::filesystem::remove(path);
}

TEST(JsonWriterTest, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("a\"b\\c\nd\te");
  w.Key("arr");
  w.BeginArray();
  w.Number(1.5);
  w.Int(-3);
  w.UInt(18446744073709551615ull);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.Key("k");
  w.Number(0.1);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\te\",\"arr\":[1.5,-3,"
            "18446744073709551615,true,null,{\"k\":0.1}]}");
}

TEST(JsonWriterTest, NumbersRoundTripShortest) {
  EXPECT_EQ(JsonNumber(0.1), "0.1");
  EXPECT_EQ(JsonNumber(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(JsonNumber(-0.0), "-0");
  EXPECT_EQ(JsonNumber(1e300), "1e+300");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

}  // namespace
}  // namespace ldpr
