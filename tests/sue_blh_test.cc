// Tests for the SUE (basic-RAPPOR unary) and BLH (binary local
// hashing) protocol extensions, including their interaction with the
// attack and recovery stack.

#include <cmath>

#include <gtest/gtest.h>

#include "attack/mga.h"
#include "data/synthetic.h"
#include "ldp/blh.h"
#include "ldp/factory.h"
#include "ldp/oue.h"
#include "ldp/sue.h"
#include "recover/detection.h"
#include "recover/ldprecover.h"
#include "sim/pipeline.h"
#include "util/math_util.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(SueTest, ProbabilitiesMatchRappor) {
  const Sue sue(20, 1.0);
  const double half = std::exp(0.5);
  EXPECT_NEAR(sue.p(), half / (half + 1.0), 1e-12);
  EXPECT_NEAR(sue.q(), 1.0 / (half + 1.0), 1e-12);
  // SUE is symmetric: p + q = 1, and the per-bit ratio is e^{eps/2}
  // in each direction, composing to eps-LDP over the two disclosed
  // directions.
  EXPECT_NEAR(sue.p() + sue.q(), 1.0, 1e-12);
}

TEST(SueTest, EstimationIsUnbiased) {
  const size_t d = 8;
  const Sue sue(d, 1.0);
  Rng rng(1);
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[2] = 60000;
  item_counts[6] = 40000;
  const auto counts = sue.SampleSupportCounts(item_counts, rng);
  const auto freqs = sue.EstimateFrequencies(counts, 100000);
  EXPECT_NEAR(freqs[2], 0.6, 0.02);
  EXPECT_NEAR(freqs[6], 0.4, 0.02);
}

TEST(SueTest, HigherVarianceThanOue) {
  // OUE's whole point: strictly lower variance than SUE at equal eps.
  const Sue sue(50, 0.5);
  const Oue oue(50, 0.5);
  EXPECT_GT(sue.CountVariance(0.1, 1000), oue.CountVariance(0.1, 1000));
}

TEST(SueTest, ExactVarianceMatchesEmpirical) {
  const size_t d = 8;
  const Sue sue(d, 1.0);
  Rng rng(2);
  const size_t n = 4000;
  std::vector<uint64_t> item_counts(d, n / d);
  RunningStat est;
  for (int trial = 0; trial < 300; ++trial) {
    const auto counts = sue.SampleSupportCounts(item_counts, rng);
    est.Add(sue.EstimateFrequencies(counts, n)[0]);
  }
  const double theory = sue.FrequencyVariance(1.0 / d, n);
  EXPECT_NEAR(est.variance(), theory, 0.3 * theory);
}

TEST(BlhTest, FixesGToTwo) {
  const Blh blh(100, 0.5);
  EXPECT_EQ(blh.g(), 2u);
  EXPECT_DOUBLE_EQ(blh.q(), 0.5);
  const double e = std::exp(0.5);
  EXPECT_NEAR(blh.p(), e / (e + 1.0), 1e-12);
}

TEST(BlhTest, HigherVarianceThanOlh) {
  const Blh blh(100, 1.0);
  const Olh olh(100, 1.0);
  EXPECT_GT(blh.CountVariance(0.1, 1000), olh.CountVariance(0.1, 1000));
}

TEST(BlhTest, EstimationIsUnbiased) {
  const size_t d = 10;
  const Blh blh(d, 1.0);
  Rng rng(3);
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[4] = 120000;
  item_counts[9] = 80000;
  const auto counts = blh.SampleSupportCounts(item_counts, rng);
  const auto freqs = blh.EstimateFrequencies(counts, 200000);
  EXPECT_NEAR(freqs[4], 0.6, 0.03);
  EXPECT_NEAR(freqs[9], 0.4, 0.03);
}

TEST(FactoryTest, ParsesAndBuildsExtensions) {
  EXPECT_EQ(ParseProtocolKind("sue").value(), ProtocolKind::kSue);
  EXPECT_EQ(ParseProtocolKind("blh").value(), ProtocolKind::kBlh);
  for (ProtocolKind kind : {ProtocolKind::kSue, ProtocolKind::kBlh}) {
    const auto proto = MakeProtocol(kind, 12, 0.5);
    ASSERT_NE(proto, nullptr);
    EXPECT_EQ(proto->kind(), kind);
  }
}

TEST(ExtensionAttackTest, MgaCraftsForSue) {
  const Sue sue(30, 0.5);
  const MgaAttack attack({3, 9, 21});
  Rng rng(4);
  for (const Report& r : attack.Craft(sue, 20, rng)) {
    EXPECT_TRUE(sue.Supports(r, 3));
    EXPECT_TRUE(sue.Supports(r, 9));
    EXPECT_TRUE(sue.Supports(r, 21));
  }
}

TEST(ExtensionAttackTest, MgaCraftsForBlh) {
  const Blh blh(30, 0.5);
  Rng rng(5);
  const auto targets = MgaAttack::SampleTargets(30, 6, rng);
  const MgaAttack attack(targets);
  for (const Report& r : attack.Craft(blh, 20, rng)) {
    size_t supported = 0;
    for (ItemId t : targets) supported += blh.Supports(r, t) ? 1 : 0;
    // With g = 2 the best bucket holds at least half the targets.
    EXPECT_GE(supported, 3u);
  }
}

TEST(ExtensionDetectionTest, ThresholdsApply) {
  const Sue sue(20, 0.5);
  const Blh blh(20, 0.5);
  EXPECT_EQ(DetectionFilter(sue, {1, 2, 3, 4}).threshold(), 4u);
  EXPECT_EQ(DetectionFilter(blh, {1, 2, 3, 4}).threshold(), 2u);
}

// End-to-end recovery works for the extension protocols too.
class ExtensionRecoveryTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ExtensionRecoveryTest, RecoversFromMga) {
  const Dataset ds = MakeZipfDataset("z", 24, 40000, 1.0, 31);
  const auto proto = MakeProtocol(GetParam(), 24, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kMga;
  config.beta = 0.05;
  Rng rng(6);
  RunningStat before, after;
  for (int trial = 0; trial < 5; ++trial) {
    const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
    const LdpRecover recover(*proto);
    before.Add(Mse(t.true_freqs, t.poisoned_freqs));
    const auto recovered = recover.Recover(t.poisoned_freqs);
    EXPECT_TRUE(IsProbabilityVector(recovered, 1e-8));
    after.Add(Mse(t.true_freqs, recovered));
  }
  EXPECT_LT(after.mean(), before.mean());
}

INSTANTIATE_TEST_SUITE_P(Extensions, ExtensionRecoveryTest,
                         ::testing::Values(ProtocolKind::kSue,
                                           ProtocolKind::kBlh),
                         [](const auto& param_info) {
                           return std::string(ProtocolKindName(param_info.param));
                         });

}  // namespace
}  // namespace ldpr
