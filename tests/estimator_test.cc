#include "recover/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/oue.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(MaliciousMomentsTest, MatchesLemma1Formulas) {
  const Grr grr(10, 1.0);
  const double p = grr.p(), q = grr.q();
  const double s = 0.3;
  const size_t m = 500;
  const Moments mo = MaliciousFrequencyMoments(grr, s, m);
  EXPECT_NEAR(mo.mean, (s - q) / (p - q), 1e-12);
  EXPECT_NEAR(mo.variance, s * (1 - s) / ((p - q) * (p - q) * m), 1e-12);
}

TEST(MaliciousMomentsTest, DeterministicSupportHasZeroVariance) {
  const Grr grr(10, 1.0);
  const Moments mo = MaliciousFrequencyMoments(grr, 1.0, 100);
  EXPECT_DOUBLE_EQ(mo.variance, 0.0);
  // A report always supporting v contributes (1-q)/(p-q) > 1 to the
  // estimated frequency — the amplification MGA exploits.
  EXPECT_GT(mo.mean, 1.0);
}

TEST(MaliciousMomentsTest, EmpiricalAgreement) {
  // Crafted GRR reports hitting item 0 with prob s: the aggregated
  // f~_Y(0) matches Lemma 1.
  const size_t d = 10;
  const Grr grr(d, 1.0);
  Rng rng(1);
  const double s = 0.4;
  const size_t m = 2000;
  RunningStat stat;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> counts(d, 0.0);
    for (size_t i = 0; i < m; ++i) {
      Report r;
      r.value = rng.Bernoulli(s) ? 0 : 1 + rng.UniformU64(d - 1);
      grr.AccumulateSupports(r, counts);
    }
    stat.Add(grr.EstimateFrequencies(counts, m)[0]);
  }
  const Moments mo = MaliciousFrequencyMoments(grr, s, m);
  EXPECT_NEAR(stat.mean(), mo.mean, 0.01);
  EXPECT_NEAR(stat.variance(), mo.variance, 0.3 * mo.variance);
}

TEST(GenuineMomentsTest, MeanIsTrueFrequency) {
  const Oue oue(50, 0.5);
  const Moments mo = GenuineFrequencyMoments(oue, 0.123, 10000);
  EXPECT_DOUBLE_EQ(mo.mean, 0.123);
  EXPECT_GT(mo.variance, 0.0);
}

TEST(GenuineMomentsTest, MatchesLemma2Formula) {
  const Grr grr(20, 0.8);
  const double p = grr.p(), q = grr.q();
  const double f = 0.2;
  const size_t n = 5000;
  const Moments mo = GenuineFrequencyMoments(grr, f, n);
  const double expected =
      q * (1 - q) / (n * (p - q) * (p - q)) + f * (1 - p - q) / (n * (p - q));
  EXPECT_NEAR(mo.variance, expected, 1e-15);
}

TEST(GenuineMomentsTest, VarianceShrinksWithN) {
  const Grr grr(20, 0.5);
  EXPECT_GT(GenuineFrequencyMoments(grr, 0.1, 100).variance,
            GenuineFrequencyMoments(grr, 0.1, 10000).variance);
}

TEST(PoisonedMomentsTest, MatchesTheorem1Mixture) {
  const Moments gen{0.3, 4e-6};
  const Moments mal{2.0, 1e-4};
  const double eta = 0.25;
  const Moments mix = PoisonedFrequencyMoments(gen, mal, eta);
  EXPECT_NEAR(mix.mean, 0.3 / 1.25 + 0.25 * 2.0 / 1.25, 1e-12);
  EXPECT_NEAR(mix.variance,
              4e-6 / (1.25 * 1.25) + 0.25 * 0.25 * 1e-4 / (1.25 * 1.25),
              1e-15);
}

TEST(PoisonedMomentsTest, ZeroEtaIsGenuine) {
  const Moments gen{0.3, 4e-6};
  const Moments mal{2.0, 1e-4};
  const Moments mix = PoisonedFrequencyMoments(gen, mal, 0.0);
  EXPECT_DOUBLE_EQ(mix.mean, gen.mean);
  EXPECT_DOUBLE_EQ(mix.variance, gen.variance);
}

TEST(RecoverGenuineTest, InvertsTheMixtureExactly) {
  // Eq. (19) is the algebraic inverse of Eq. (14): with the exact
  // f~_Y, the recovered vector equals f~_X to rounding.
  const double eta = 0.2;
  const std::vector<double> genuine = {0.5, 0.3, 0.2};
  const std::vector<double> malicious = {1.2, -0.1, -0.1};
  std::vector<double> poisoned(3);
  for (size_t v = 0; v < 3; ++v)
    poisoned[v] = genuine[v] / (1 + eta) + eta * malicious[v] / (1 + eta);
  const auto recovered = RecoverGenuineFrequencies(poisoned, malicious, eta);
  for (size_t v = 0; v < 3; ++v) EXPECT_NEAR(recovered[v], genuine[v], 1e-12);
}

TEST(BerryEsseenTest, BoundShrinksAsSqrtCount) {
  const double b100 = BerryEsseenBound(0.1, 0.5, 100);
  const double b10000 = BerryEsseenBound(0.1, 0.5, 10000);
  EXPECT_NEAR(b100 / b10000, 10.0, 1e-9);
}

TEST(BerryEsseenTest, Theorem4BoundFiniteAndDecreasing) {
  const Grr grr(102, 0.5);
  const double b_small = MaliciousApproximationErrorBound(grr, 0.1, 100);
  const double b_large = MaliciousApproximationErrorBound(grr, 0.1, 10000);
  EXPECT_GT(b_small, 0.0);
  EXPECT_LT(b_large, b_small);
  EXPECT_NEAR(b_small / b_large, 10.0, 1e-6);
}

TEST(BerryEsseenTest, Theorem5BoundFinite) {
  const Oue oue(102, 0.5);
  const double b = GenuineApproximationErrorBound(oue, 0.05, 389894);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 0.01);  // paper-scale n makes the CLT gap tiny
}

TEST(BerryEsseenTest, DegenerateSupportIsExact) {
  const Grr grr(10, 0.5);
  EXPECT_DOUBLE_EQ(MaliciousApproximationErrorBound(grr, 0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(MaliciousApproximationErrorBound(grr, 1.0, 100), 0.0);
}

}  // namespace
}  // namespace ldpr
