#include "util/flags.h"

#include <gtest/gtest.h>

namespace ldpr {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsForm) {
  const auto flags = Parse({"--protocol=OUE", "--beta=0.1"});
  EXPECT_EQ(flags.GetString("protocol", "GRR"), "OUE");
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0).value(), 0.1);
}

TEST(FlagParserTest, SpaceForm) {
  const auto flags = Parse({"--protocol", "OLH", "--trials", "7"});
  EXPECT_EQ(flags.GetString("protocol", ""), "OLH");
  EXPECT_EQ(flags.GetInt("trials", 0).value(), 7);
}

TEST(FlagParserTest, BooleanForms) {
  const auto flags = Parse({"--verbose", "--fast=true", "--slow=0"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_FALSE(flags.GetBool("slow", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const auto flags = Parse({});
  EXPECT_EQ(flags.GetString("x", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(flags.GetDouble("y", 2.5).value(), 2.5);
  EXPECT_EQ(flags.GetInt("z", -3).value(), -3);
  EXPECT_FALSE(flags.Has("x"));
}

TEST(FlagParserTest, MalformedNumbersAreErrors) {
  const auto flags = Parse({"--beta=abc", "--trials=1.5x"});
  EXPECT_FALSE(flags.GetDouble("beta", 0.0).ok());
  EXPECT_FALSE(flags.GetInt("trials", 0).ok());
}

TEST(FlagParserTest, PositionalArguments) {
  const auto flags = Parse({"input.csv", "--k=3", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagParserTest, UnusedFlagsDetected) {
  const auto flags = Parse({"--used=1", "--typo=2"});
  (void)flags.GetInt("used", 0);
  const auto unused = flags.unused_flags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagParserTest, LastValueWins) {
  const auto flags = Parse({"--x=1", "--x=2"});
  EXPECT_EQ(flags.GetInt("x", 0).value(), 2);
}

}  // namespace
}  // namespace ldpr
