#include "recover/kmeans_defense.h"

#include <gtest/gtest.h>

#include "attack/ipa.h"
#include "ldp/grr.h"
#include "util/math_util.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(TwoMeansTest, SeparatesCleanClusters) {
  // Two well-separated blobs in 2D: the minority must be labelled 1.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 8; ++i)
    rows.push_back({0.0 + 0.01 * i, 0.0});
  for (int i = 0; i < 3; ++i)
    rows.push_back({5.0 + 0.01 * i, 5.0});
  Rng rng(1);
  const auto labels = TwoMeansCluster(rows, 50, 4, rng);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(labels[i], 0);
  for (int i = 8; i < 11; ++i) EXPECT_EQ(labels[i], 1);
}

TEST(TwoMeansTest, MinorityIsAlwaysLabelOne) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 3; ++i) rows.push_back({0.0});
  for (int i = 0; i < 9; ++i) rows.push_back({10.0});
  Rng rng(2);
  const auto labels = TwoMeansCluster(rows, 50, 4, rng);
  size_t ones = 0;
  for (uint8_t l : labels) ones += l;
  EXPECT_EQ(ones, 3u);
}

// Builds an IPA-poisoned report set over a uniform population.
std::vector<Report> MakePoisonedReports(const Grr& grr, size_t n, size_t m,
                                        const std::vector<ItemId>& targets,
                                        Rng& rng) {
  std::vector<Report> reports;
  reports.reserve(n + m);
  const size_t d = grr.domain_size();
  for (size_t i = 0; i < n; ++i)
    reports.push_back(grr.Perturb(static_cast<ItemId>(i % d), rng));
  const auto ipa = MakeMgaIpa(d, targets);
  auto crafted = ipa->Craft(grr, m, rng);
  std::move(crafted.begin(), crafted.end(), std::back_inserter(reports));
  return reports;
}

TEST(KMeansDefenseTest, ProducesConsistentStructures) {
  const Grr grr(12, 1.0);
  Rng rng(3);
  const auto reports = MakePoisonedReports(grr, 6000, 600, {0}, rng);
  KMeansDefenseOptions opts;
  opts.sample_rate = 0.2;  // 5 disjoint subsets
  const auto result = RunKMeansDefense(grr, reports, opts, rng);
  EXPECT_EQ(result.subset_estimates.size(), 5u);
  EXPECT_EQ(result.subset_is_malicious.size(), 5u);
  EXPECT_EQ(result.genuine_estimate.size(), 12u);
  EXPECT_LE(result.malicious_subset_fraction, 0.5);
}

TEST(KMeansDefenseTest, GenuineEstimateTracksPopulation) {
  const size_t d = 10;
  const Grr grr(d, 1.0);
  Rng rng(4);
  const auto reports = MakePoisonedReports(grr, 20000, 1000, {3}, rng);
  KMeansDefenseOptions opts;
  const auto result = RunKMeansDefense(grr, reports, opts, rng);
  // Non-target items track the uniform population; the target (item
  // 3) retains the IPA inflation — the defense cannot remove bias
  // that is spread evenly across every subset.
  for (size_t v = 0; v < d; ++v) {
    if (v == 3) continue;
    EXPECT_NEAR(result.genuine_estimate[v], 0.1, 0.05);
  }
  EXPECT_GT(result.genuine_estimate[3], 0.1);
}

TEST(LdpRecoverKmTest, OutputOnSimplex) {
  const Grr grr(10, 1.0);
  Rng rng(5);
  const auto reports = MakePoisonedReports(grr, 10000, 800, {2}, rng);
  const auto recovered =
      LdpRecoverKm(grr, reports, KMeansDefenseOptions(), 0.1, rng);
  EXPECT_TRUE(IsProbabilityVector(recovered, 1e-8));
}

TEST(LdpRecoverKmTest, BeatsKMeansAloneUnderIpa) {
  // Figure 9's qualitative claim: LDPRecover-KM beats the plain
  // k-means defense (whose genuine-cluster estimate discards data and
  // keeps the IPA bias) and stays in the poisoned estimate's
  // ballpark, averaged over trials.
  const size_t d = 10;
  const Grr grr(d, 1.0);
  Rng rng(6);
  const size_t n = 20000, m = 3000;  // strong IPA
  std::vector<double> truth(d, 1.0 / d);

  RunningStat mse_km, mse_kmeans_alone, mse_poisoned;
  for (int trial = 0; trial < 8; ++trial) {
    const auto reports = MakePoisonedReports(grr, n, m, {0}, rng);
    Aggregator all(grr);
    all.AddAll(reports);
    mse_poisoned.Add(Mse(truth, all.EstimateFrequencies()));

    KMeansDefenseOptions opts;
    opts.sample_rate = 0.1;
    const auto defense = RunKMeansDefense(grr, reports, opts, rng);
    mse_kmeans_alone.Add(Mse(truth, defense.genuine_estimate));

    const auto recovered = LdpRecoverKm(grr, reports, opts, 0.2, rng);
    mse_km.Add(Mse(truth, recovered));
  }
  EXPECT_LT(mse_km.mean(), mse_kmeans_alone.mean());
  EXPECT_LT(mse_km.mean(), 1.5 * mse_poisoned.mean());
}

TEST(KMeansDefenseDeathTest, RejectsEmptyReports) {
  const Grr grr(5, 0.5);
  Rng rng(7);
  EXPECT_DEATH(RunKMeansDefense(grr, {}, KMeansDefenseOptions(), rng),
               "LDPR_CHECK");
}

TEST(KMeansDefenseDeathTest, RejectsBadSampleRate) {
  const Grr grr(5, 0.5);
  Rng rng(8);
  std::vector<Report> reports(3);
  KMeansDefenseOptions opts;
  opts.sample_rate = 0.0;
  EXPECT_DEATH(RunKMeansDefense(grr, reports, opts, rng), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
