// The sharded-aggregation determinism contract (docs/architecture.md):
// every sharded path — closed-form sampling, per-user exact
// simulation, report-stream accumulation, whole trials, whole
// experiments — produces byte-identical output at any shard/thread
// count, because the chunk decomposition and the per-chunk RNG
// streams depend only on the population and the seed.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "ldp/harmony.h"
#include "recover/detection.h"
#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "util/random.h"

namespace ldpr {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 8};

TEST(RestrictItemCountsTest, SplitsPartitionThePopulation) {
  const std::vector<uint64_t> item_counts = {5, 0, 3, 7, 1};
  const std::vector<uint64_t> all = RestrictItemCountsToUsers(item_counts, 0, 16);
  EXPECT_EQ(all, item_counts);

  // Any chunking of [0, 16) must recompose the histogram exactly.
  for (uint64_t chunk : {1u, 2u, 5u, 16u}) {
    std::vector<uint64_t> sum(item_counts.size(), 0);
    for (uint64_t begin = 0; begin < 16; begin += chunk) {
      const auto part = RestrictItemCountsToUsers(
          item_counts, begin, std::min<uint64_t>(16, begin + chunk));
      for (size_t v = 0; v < sum.size(); ++v) sum[v] += part[v];
    }
    EXPECT_EQ(sum, item_counts) << "chunk=" << chunk;
  }

  const auto mid = RestrictItemCountsToUsers(item_counts, 4, 9);
  EXPECT_EQ(mid, (std::vector<uint64_t>{1, 0, 3, 1, 0}));
  const auto empty = RestrictItemCountsToUsers(item_counts, 9, 9);
  EXPECT_EQ(empty, (std::vector<uint64_t>{0, 0, 0, 0, 0}));
}

// The acceptance bar of the sharded-aggregation change: a
// million-user population, sampled closed-form, is byte-identical at
// shards = 1 / 2 / 8 for every protocol the factory builds.
TEST(ShardedAggregationTest, MillionUserSampleIdenticalAcrossShardCounts) {
  const Dataset dataset = MakeZipfDataset("z", /*d=*/64, /*n=*/1000000,
                                          /*s=*/1.0, /*shuffle_seed=*/7);
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
    const std::vector<double> reference =
        protocol->SampleSupportCountsSharded(dataset.item_counts, 99, 1);
    ASSERT_EQ(reference.size(), dataset.domain_size());
    for (size_t shards : kShardCounts) {
      const std::vector<double> counts =
          protocol->SampleSupportCountsSharded(dataset.item_counts, 99, shards);
      EXPECT_EQ(counts, reference)
          << ProtocolKindName(kind) << " shards=" << shards;
    }
  }
}

TEST(ShardedAggregationTest, RangeSamplersMatchRestrictedHistogram) {
  // The OLH/unary SampleSupportCountsRange overrides must draw
  // exactly what the default restrict-then-sample path draws.
  const Dataset dataset = MakeZipfDataset("z", /*d=*/32, /*n=*/150000,
                                          /*s=*/1.1, /*shuffle_seed=*/3);
  const uint64_t begin = 70000, end = 120000;
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
    Rng rng_range(123), rng_default(123);
    const auto via_override = protocol->SampleSupportCountsRange(
        dataset.item_counts, begin, end, rng_range);
    const auto via_restrict = protocol->SampleSupportCounts(
        RestrictItemCountsToUsers(dataset.item_counts, begin, end),
        rng_default);
    EXPECT_EQ(via_override, via_restrict) << ProtocolKindName(kind);
  }
}

TEST(ShardedAggregationTest, ExactPerUserPathIdenticalAcrossShardCounts) {
  // Per-user exact simulation of a 1M-user GRR population (the
  // reference path) also shards deterministically.
  const Dataset dataset = MakeZipfDataset("z", /*d=*/48, /*n=*/1000000,
                                          /*s=*/1.0, /*shuffle_seed=*/11);
  const auto grr = MakeProtocol(ProtocolKind::kGrr, dataset.domain_size(), 0.5);
  const auto reference =
      ExactGenuineSupportCountsSharded(*grr, dataset.item_counts, 17, 1);
  double total = 0;
  for (double c : reference) total += c;
  EXPECT_DOUBLE_EQ(total, 1000000.0);  // every GRR report supports one item
  for (size_t shards : kShardCounts) {
    EXPECT_EQ(ExactGenuineSupportCountsSharded(*grr, dataset.item_counts, 17,
                                               shards),
              reference)
        << "shards=" << shards;
  }
}

TEST(ShardedAggregationTest, AddSampledPopulationMatchesDirectSample) {
  const Dataset dataset = MakeZipfDataset("z", /*d=*/32, /*n=*/300000,
                                          /*s=*/1.0, /*shuffle_seed=*/5);
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
    const auto direct =
        protocol->SampleSupportCountsSharded(dataset.item_counts, 55, 1);
    for (size_t shards : kShardCounts) {
      Aggregator agg(*protocol);
      agg.AddSampledPopulation(dataset.item_counts, 55, shards);
      EXPECT_EQ(agg.support_counts(), direct)
          << ProtocolKindName(kind) << " shards=" << shards;
      EXPECT_EQ(agg.report_count(), dataset.num_users());
    }
  }
}

TEST(ShardedAggregationTest, AddAllShardedMatchesAddAll) {
  const size_t d = 24;
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto protocol = MakeProtocol(kind, d, 0.5);
    Rng rng(5);
    std::vector<Report> reports;
    for (size_t i = 0; i < 20000; ++i)
      reports.push_back(protocol->Perturb(i % d, rng));

    Aggregator serial(*protocol);
    serial.AddAll(reports);
    for (size_t shards : kShardCounts) {
      Aggregator sharded(*protocol);
      sharded.AddAllSharded(reports, shards);
      EXPECT_EQ(sharded.support_counts(), serial.support_counts())
          << ProtocolKindName(kind) << " shards=" << shards;
      EXPECT_EQ(sharded.report_count(), serial.report_count());
    }
  }
}

TEST(ShardedAggregationTest, PoisoningTrialIdenticalAcrossShardCounts) {
  const Dataset dataset = MakeZipfDataset("z", /*d=*/40, /*n=*/200000,
                                          /*s=*/1.0, /*shuffle_seed=*/9);
  for (ProtocolKind kind : {ProtocolKind::kGrr, ProtocolKind::kOue,
                            ProtocolKind::kOlh}) {
    const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
    PipelineConfig config;
    config.attack = AttackKind::kMga;
    config.beta = 0.05;

    config.shards = 1;
    Rng rng_serial(77);
    const TrialOutput serial =
        RunPoisoningTrial(*protocol, config, dataset, rng_serial);
    for (size_t shards : kShardCounts) {
      config.shards = shards;
      Rng rng(77);
      const TrialOutput t = RunPoisoningTrial(*protocol, config, dataset, rng);
      EXPECT_EQ(t.genuine_freqs, serial.genuine_freqs)
          << ProtocolKindName(kind) << " shards=" << shards;
      EXPECT_EQ(t.poisoned_freqs, serial.poisoned_freqs);
      EXPECT_EQ(t.malicious_freqs, serial.malicious_freqs);
      EXPECT_EQ(t.attack_targets, serial.attack_targets);
    }
  }
}

TEST(ShardedAggregationTest, ExperimentBudgetSplitDoesNotChangeResults) {
  // trials < threads routes budget into within-trial shards; the
  // metrics must not move.
  const Dataset dataset = MakeZipfDataset("z", /*d=*/32, /*n=*/120000,
                                          /*s=*/1.0, /*shuffle_seed=*/13);
  ExperimentConfig config;
  config.protocol = ProtocolKind::kOue;
  config.pipeline.attack = AttackKind::kAdaptive;
  config.trials = 2;
  config.seed = 4242;

  config.threads = 1;
  const ExperimentResult serial = RunExperiment(config, dataset);
  for (size_t threads : {2u, 8u}) {
    config.threads = threads;
    const ExperimentResult parallel = RunExperiment(config, dataset);
    EXPECT_EQ(parallel.mse_before.mean(), serial.mse_before.mean())
        << "threads=" << threads;
    EXPECT_EQ(parallel.mse_recover.mean(), serial.mse_recover.mean());
    EXPECT_EQ(parallel.fg_recover.mean(), serial.fg_recover.mean());
  }
}

TEST(ShardedAggregationTest, DetectionFilterIdenticalAcrossShardCounts) {
  // The sharded Detection fast path — the last per-trial aggregation
  // that used to stream serially (OLH/BLH) — must be byte-identical
  // at any shard count for every protocol the factory builds.
  const Dataset dataset = MakeZipfDataset("z", /*d=*/40, /*n=*/300000,
                                          /*s=*/1.0, /*shuffle_seed=*/9);
  const std::vector<ItemId> targets = {1, 5, 9, 13, 17, 21, 25, 29, 33, 37};
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto protocol = MakeProtocol(kind, dataset.domain_size(), 0.5);
    DetectionFilter reference(*protocol, targets);
    reference.OfferSampledGenuineSharded(dataset.item_counts, 41, 1);
    ASSERT_EQ(reference.offered(), dataset.num_users())
        << ProtocolKindName(kind);
    ASSERT_GT(reference.kept(), 0u) << ProtocolKindName(kind);
    ASSERT_LE(reference.kept(), reference.offered())
        << ProtocolKindName(kind);
    for (size_t shards : kShardCounts) {
      DetectionFilter filter(*protocol, targets);
      filter.OfferSampledGenuineSharded(dataset.item_counts, 41, shards);
      EXPECT_EQ(filter.offered(), reference.offered())
          << ProtocolKindName(kind) << " shards=" << shards;
      EXPECT_EQ(filter.kept(), reference.kept())
          << ProtocolKindName(kind) << " shards=" << shards;
      EXPECT_EQ(filter.Estimate(), reference.Estimate())
          << ProtocolKindName(kind) << " shards=" << shards;
    }
  }
}

TEST(ShardedAggregationTest, DetectionShardedEstimateIsSane) {
  // Sanity anchor for the sharded filter's law: with GRR the filter
  // only zeroes target rows, so non-target frequencies estimated from
  // the kept sample stay close to truth at n = 300k.
  const Dataset dataset = MakeZipfDataset("z", /*d=*/40, /*n=*/300000,
                                          /*s=*/1.0, /*shuffle_seed=*/9);
  const std::vector<double> truth = dataset.TrueFrequencies();
  const auto grr = MakeProtocol(ProtocolKind::kGrr, dataset.domain_size(), 0.5);
  DetectionFilter filter(*grr, {3});
  filter.OfferSampledGenuineSharded(dataset.item_counts, 43, 8);
  const std::vector<double> estimate = filter.Estimate();
  for (ItemId v : {ItemId(0), ItemId(7), ItemId(20)}) {
    EXPECT_NEAR(estimate[v], truth[v], 0.1) << "item " << v;
  }
}

TEST(ShardedAggregationTest, HarmonyShardedMeanMatchesSerial) {
  const Harmony harmony(0.5);
  Rng rng(21);
  std::vector<Report> reports;
  for (size_t i = 0; i < 30000; ++i)
    reports.push_back(harmony.Perturb(0.3, rng));
  const double serial = harmony.EstimateMean(reports);
  for (size_t shards : kShardCounts) {
    EXPECT_EQ(harmony.EstimateMeanSharded(reports, shards), serial)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace ldpr
