// epsilon-LDP verification (Definition 1): for every protocol, the
// worst-case likelihood ratio between two inputs over any output is
// at most e^eps.  Checked both analytically (closed-form worst cases)
// and empirically (report-histogram ratios for GRR).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ldp/blh.h"
#include "ldp/factory.h"
#include "ldp/grr.h"
#include "ldp/olh.h"
#include "ldp/oue.h"
#include "ldp/sue.h"

namespace ldpr {
namespace {

TEST(PrivacyTest, GrrWorstCaseRatioIsExactlyExpEps) {
  for (double eps : {0.1, 0.5, 1.0, 1.6}) {
    const Grr grr(102, eps);
    // Output = the true item vs output = any other item: p/q.
    EXPECT_NEAR(grr.p() / grr.q(), std::exp(eps), 1e-9) << eps;
  }
}

TEST(PrivacyTest, OueWorstCaseRatioIsExactlyExpEps) {
  // For unary encodings the likelihood of a report factorizes over
  // bits; switching the input from v1 to v2 changes only bits v1 and
  // v2.  The worst output has bit v1 = 1 and bit v2 = 0:
  // ratio = (p / q) * ((1 - q) / (1 - p)).
  for (double eps : {0.1, 0.5, 1.0, 1.6}) {
    const Oue oue(102, eps);
    const double ratio = (oue.p() / oue.q()) *
                         ((1.0 - oue.q()) / (1.0 - oue.p()));
    EXPECT_NEAR(ratio, std::exp(eps), 1e-9) << eps;
  }
}

TEST(PrivacyTest, SueWorstCaseRatioIsExactlyExpEps) {
  for (double eps : {0.1, 0.5, 1.0, 1.6}) {
    const Sue sue(102, eps);
    const double ratio = (sue.p() / sue.q()) *
                         ((1.0 - sue.q()) / (1.0 - sue.p()));
    EXPECT_NEAR(ratio, std::exp(eps), 1e-9) << eps;
  }
}

TEST(PrivacyTest, OlhWorstCaseRatioIsExactlyExpEps) {
  // Conditioned on the hash seed, OLH is GRR over g buckets: the
  // worst ratio is p_g / q_g = p * (g - 1) / (1 - p).
  for (double eps : {0.1, 0.5, 1.0, 1.6}) {
    const Olh olh(102, eps);
    const double ratio = olh.p() * static_cast<double>(olh.g() - 1) /
                         (1.0 - olh.p());
    EXPECT_NEAR(ratio, std::exp(eps), 1e-9) << eps;
  }
}

TEST(PrivacyTest, BlhWorstCaseRatioIsExactlyExpEps) {
  for (double eps : {0.1, 0.5, 1.0, 1.6}) {
    const Blh blh(102, eps);
    const double ratio = blh.p() / (1.0 - blh.p());
    EXPECT_NEAR(ratio, std::exp(eps), 1e-9) << eps;
  }
}

TEST(PrivacyTest, GrrEmpiricalHistogramRatioBounded) {
  // Empirical check: output histograms from two different inputs have
  // pointwise ratio <= e^eps (up to sampling noise).
  const double eps = 1.0;
  const size_t d = 6;
  const Grr grr(d, eps);
  Rng rng(1);
  const int kTrials = 200000;
  std::vector<double> h1(d, 0.0), h2(d, 0.0);
  for (int i = 0; i < kTrials; ++i) {
    h1[grr.Perturb(0, rng).value] += 1.0;
    h2[grr.Perturb(3, rng).value] += 1.0;
  }
  for (size_t b = 0; b < d; ++b) {
    const double ratio = h1[b] / h2[b];
    EXPECT_LT(ratio, std::exp(eps) * 1.1) << b;
    EXPECT_GT(ratio, std::exp(-eps) / 1.1) << b;
  }
}

TEST(PrivacyTest, SmallerEpsilonMeansMoreNoise) {
  // Monotonicity across the whole suite: tighter privacy -> higher
  // estimation variance.
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const auto tight = MakeProtocol(kind, 64, 0.2);
    const auto loose = MakeProtocol(kind, 64, 1.5);
    EXPECT_GT(tight->CountVariance(0.1, 1000),
              loose->CountVariance(0.1, 1000))
        << ProtocolKindName(kind);
  }
}

}  // namespace
}  // namespace ldpr
