#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/math_util.h"

namespace ldpr {
namespace {

TEST(DatasetTest, CountsAndFrequencies) {
  const Dataset ds = MakeDatasetFromCounts("t", {10, 30, 60});
  EXPECT_EQ(ds.domain_size(), 3u);
  EXPECT_EQ(ds.num_users(), 100u);
  const auto f = ds.TrueFrequencies();
  EXPECT_DOUBLE_EQ(f[0], 0.1);
  EXPECT_DOUBLE_EQ(f[2], 0.6);
  EXPECT_TRUE(IsProbabilityVector(f));
}

TEST(DatasetTest, FromFrequenciesApportionsExactly) {
  const Dataset ds =
      MakeDatasetFromFrequencies("t", {0.5, 0.25, 0.25}, 1000);
  EXPECT_EQ(ds.num_users(), 1000u);
  EXPECT_EQ(ds.item_counts[0], 500u);
  EXPECT_EQ(ds.item_counts[1], 250u);
}

TEST(DatasetTest, FromFrequenciesHandlesRoundingRemainder) {
  const Dataset ds = MakeDatasetFromFrequencies("t", {1.0, 1.0, 1.0}, 100);
  EXPECT_EQ(ds.num_users(), 100u);
  // 34/33/33 in some order.
  uint64_t max_c = 0, min_c = 100;
  for (uint64_t c : ds.item_counts) {
    max_c = std::max(max_c, c);
    min_c = std::min(min_c, c);
  }
  EXPECT_EQ(max_c, 34u);
  EXPECT_EQ(min_c, 33u);
}

TEST(DatasetTest, ScalePreservesShape) {
  const Dataset ds = MakeDatasetFromCounts("t", {100, 300, 600});
  const Dataset scaled = ScaleDataset(ds, 0.1);
  EXPECT_EQ(scaled.num_users(), 100u);
  const auto f0 = ds.TrueFrequencies();
  const auto f1 = scaled.TrueFrequencies();
  for (size_t v = 0; v < 3; ++v) EXPECT_NEAR(f0[v], f1[v], 0.02);
}

TEST(DatasetTest, ScaleByOneIsIdentity) {
  const Dataset ds = MakeDatasetFromCounts("t", {7, 13});
  const Dataset same = ScaleDataset(ds, 1.0);
  EXPECT_EQ(same.item_counts, ds.item_counts);
}

TEST(DatasetTest, ScaleNeverDropsBelowDomainSize) {
  const Dataset ds = MakeDatasetFromCounts("t", {50, 50, 50, 50});
  const Dataset tiny = ScaleDataset(ds, 0.001);
  EXPECT_GE(tiny.num_users(), 4u);
}

TEST(SyntheticTest, ZipfIsSortedWithoutShuffle) {
  const Dataset ds = MakeZipfDataset("z", 50, 10000, 1.0, /*shuffle_seed=*/0);
  for (size_t v = 1; v < 50; ++v)
    EXPECT_LE(ds.item_counts[v], ds.item_counts[v - 1]);
}

TEST(SyntheticTest, ShuffleSeedPermutesDeterministically) {
  const Dataset a = MakeZipfDataset("z", 50, 10000, 1.0, 42);
  const Dataset b = MakeZipfDataset("z", 50, 10000, 1.0, 42);
  const Dataset c = MakeZipfDataset("z", 50, 10000, 1.0, 43);
  EXPECT_EQ(a.item_counts, b.item_counts);
  EXPECT_NE(a.item_counts, c.item_counts);
}

TEST(SyntheticTest, UniformDatasetIsBalanced) {
  const Dataset ds = MakeUniformDataset("u", 10, 1000);
  for (uint64_t c : ds.item_counts) EXPECT_EQ(c, 100u);
}

TEST(SyntheticTest, IpumsLikeMatchesPaperScale) {
  const Dataset ds = MakeIpumsLike();
  EXPECT_EQ(ds.name, "IPUMS");
  EXPECT_EQ(ds.domain_size(), 102u);
  EXPECT_EQ(ds.num_users(), 389894u);
}

TEST(SyntheticTest, FireLikeMatchesPaperScale) {
  const Dataset ds = MakeFireLike();
  EXPECT_EQ(ds.name, "Fire");
  EXPECT_EQ(ds.domain_size(), 490u);
  EXPECT_EQ(ds.num_users(), 667574u);
}

TEST(SyntheticTest, IpumsLikeIsSkewed) {
  const Dataset ds = MakeIpumsLike();
  uint64_t max_c = 0;
  for (uint64_t c : ds.item_counts) max_c = std::max(max_c, c);
  // The head item dominates the mean by an order of magnitude.
  EXPECT_GT(max_c, 10 * ds.num_users() / ds.domain_size());
}

TEST(DatasetDeathTest, RejectsSingleItemDomain) {
  EXPECT_DEATH(MakeDatasetFromCounts("t", {5}), "LDPR_CHECK");
}

TEST(DatasetDeathTest, RejectsEmptyPopulation) {
  EXPECT_DEATH(MakeDatasetFromCounts("t", {0, 0}), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
