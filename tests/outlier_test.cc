#include "recover/outlier.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ldpr {
namespace {

std::vector<std::vector<double>> MakeHistory(size_t epochs, size_t d,
                                             double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> history;
  for (size_t e = 0; e < epochs; ++e) {
    std::vector<double> epoch(d);
    for (size_t v = 0; v < d; ++v)
      epoch[v] = 0.1 + noise * (rng.UniformDouble() - 0.5);
    history.push_back(std::move(epoch));
  }
  return history;
}

TEST(OutlierTest, FlagsInflatedItems) {
  const size_t d = 20;
  const auto history = MakeHistory(8, d, 0.01, 1);
  std::vector<double> current = history.back();
  current[7] += 0.2;   // targeted poisoning spike
  current[13] += 0.15;
  const auto outliers = DetectFrequencyOutliers(history, current);
  EXPECT_EQ(outliers, (std::vector<ItemId>{7, 13}));
}

TEST(OutlierTest, NoFalsePositivesOnCleanEpoch) {
  const auto history = MakeHistory(8, 20, 0.01, 2);
  // A current epoch drawn from the same law.
  const auto current = MakeHistory(1, 20, 0.01, 99).front();
  const auto outliers = DetectFrequencyOutliers(history, current);
  EXPECT_TRUE(outliers.empty());
}

TEST(OutlierTest, IgnoresDownwardDeviations) {
  const auto history = MakeHistory(8, 10, 0.01, 3);
  std::vector<double> current = history.back();
  current[4] -= 0.09;  // deflation is not targeted-poisoning signal
  EXPECT_TRUE(DetectFrequencyOutliers(history, current).empty());
}

TEST(OutlierTest, RequiresMinimumHistory) {
  const auto history = MakeHistory(2, 10, 0.01, 4);
  std::vector<double> current = history.back();
  current[0] += 0.5;
  OutlierDetectorOptions opts;
  opts.min_history = 3;
  EXPECT_TRUE(DetectFrequencyOutliers(history, current, opts).empty());
}

TEST(OutlierTest, ThresholdControlsSensitivity) {
  const auto history = MakeHistory(10, 10, 0.02, 5);
  std::vector<double> current = history.back();
  current[3] += 0.05;  // modest bump
  OutlierDetectorOptions strict;
  strict.z_threshold = 50.0;
  EXPECT_TRUE(DetectFrequencyOutliers(history, current, strict).empty());
  OutlierDetectorOptions loose;
  loose.z_threshold = 2.0;
  const auto found = DetectFrequencyOutliers(history, current, loose);
  EXPECT_FALSE(found.empty());
}

TEST(OutlierTest, StddevFloorHandlesConstantHistory) {
  std::vector<std::vector<double>> history(5, std::vector<double>(4, 0.25));
  std::vector<double> current = {0.25, 0.25, 0.25 + 1e-3, 0.25};
  // A 1e-3 bump over a constant history is a huge z-score thanks to
  // the floor, but not a NaN/crash.
  const auto found = DetectFrequencyOutliers(history, current);
  EXPECT_EQ(found, (std::vector<ItemId>{2}));
}

TEST(TopFrequencyGainersTest, PicksLargestIncreases) {
  const std::vector<double> before = {0.1, 0.2, 0.3, 0.4};
  const std::vector<double> after = {0.15, 0.5, 0.28, 0.42};
  const auto top2 = TopFrequencyGainers(before, after, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);  // +0.30
  EXPECT_EQ(top2[1], 0u);  // +0.05
}

TEST(TopFrequencyGainersTest, KClampedToDomain) {
  const std::vector<double> before = {0.5, 0.5};
  const std::vector<double> after = {0.6, 0.4};
  EXPECT_EQ(TopFrequencyGainers(before, after, 10).size(), 2u);
}

}  // namespace
}  // namespace ldpr
