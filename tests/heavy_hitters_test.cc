#include "tasks/heavy_hitters.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "recover/ldprecover.h"
#include "sim/pipeline.h"

namespace ldpr {
namespace {

TEST(IdentifyHeavyHittersTest, SortsByFrequency) {
  const std::vector<double> freqs = {0.1, 0.4, 0.05, 0.25, 0.2};
  const auto hitters = IdentifyHeavyHitters(freqs, {.k = 3});
  ASSERT_EQ(hitters.size(), 3u);
  EXPECT_EQ(hitters[0].item, 1u);
  EXPECT_EQ(hitters[1].item, 3u);
  EXPECT_EQ(hitters[2].item, 4u);
  EXPECT_DOUBLE_EQ(hitters[0].frequency, 0.4);
}

TEST(IdentifyHeavyHittersTest, MinFrequencyTruncates) {
  const std::vector<double> freqs = {0.5, 0.3, 0.001, 0.0};
  const auto hitters =
      IdentifyHeavyHitters(freqs, {.k = 4, .min_frequency = 0.01});
  EXPECT_EQ(hitters.size(), 2u);
}

TEST(IdentifyHeavyHittersTest, KLargerThanDomain) {
  const std::vector<double> freqs = {0.6, 0.4};
  EXPECT_EQ(IdentifyHeavyHitters(freqs, {.k = 10}).size(), 2u);
}

TEST(IdentifyHeavyHittersTest, TieBreaksById) {
  const std::vector<double> freqs = {0.25, 0.25, 0.25, 0.25};
  const auto hitters = IdentifyHeavyHitters(freqs, {.k = 2});
  EXPECT_EQ(hitters[0].item, 0u);
  EXPECT_EQ(hitters[1].item, 1u);
}

TEST(TopKDisplacementTest, ZeroForIdenticalRanking) {
  const std::vector<double> freqs = {0.4, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(TopKDisplacement(freqs, freqs, 2), 0.0);
}

TEST(TopKDisplacementTest, FullDisplacement) {
  const std::vector<double> truth = {0.4, 0.3, 0.2, 0.1};
  const std::vector<double> est = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(TopKDisplacement(truth, est, 2), 1.0);
}

TEST(TopKDisplacementTest, PartialDisplacement) {
  const std::vector<double> truth = {0.4, 0.3, 0.2, 0.1};
  const std::vector<double> est = {0.4, 0.1, 0.2, 0.3};  // item 1 drops out
  EXPECT_DOUBLE_EQ(TopKDisplacement(truth, est, 2), 0.5);
}

TEST(TopKDisplacementTest, LargeKMatchesNaiveMembership) {
  // The membership check must stay correct (and fast) when k scales
  // with the domain — the regime where the old std::find-per-item
  // scan was quadratic in k.
  Rng rng(11);
  const size_t d = 8192, k = 4096;
  std::vector<double> truth(d), est(d);
  for (double& x : truth) x = rng.UniformDouble();
  for (double& x : est) x = rng.UniformDouble();

  // Naive reference: linear scans over the two top-k id vectors.
  std::vector<uint8_t> in_truth_top(d, 0), in_est_top(d, 0);
  {
    const auto top_truth = IdentifyHeavyHitters(truth, {.k = k});
    const auto top_est = IdentifyHeavyHitters(est, {.k = k});
    for (const HeavyHitter& h : top_truth) in_truth_top[h.item] = 1;
    for (const HeavyHitter& h : top_est) in_est_top[h.item] = 1;
  }
  size_t missing = 0;
  for (size_t v = 0; v < d; ++v) {
    if (in_truth_top[v] && !in_est_top[v]) ++missing;
  }
  EXPECT_DOUBLE_EQ(TopKDisplacement(truth, est, k),
                   static_cast<double>(missing) / static_cast<double>(k));

  std::vector<ItemId> probes;
  for (ItemId v = 0; v < d; v += 3) probes.push_back(v);
  size_t expected = 0;
  for (ItemId v : probes) expected += in_est_top[v];
  EXPECT_EQ(CountInTopK(est, probes, k), expected);
}

TEST(CountInTopKTest, CountsMembership) {
  const std::vector<double> freqs = {0.4, 0.3, 0.2, 0.1};
  EXPECT_EQ(CountInTopK(freqs, {0, 3}, 2), 1u);
  EXPECT_EQ(CountInTopK(freqs, {0, 1}, 2), 2u);
  EXPECT_EQ(CountInTopK(freqs, {}, 2), 0u);
}

TEST(HeavyHitterRecoveryTest, RecoveryRestoresRankingUnderMga) {
  // End-to-end task-level check: MGA pushes its targets into the
  // published top-10; recovery evicts (most of) them.
  const Dataset ds = MakeZipfDataset("z", 64, 200000, 1.2, 5);
  const auto proto = MakeProtocol(ProtocolKind::kOue, 64, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kMga;
  config.beta = 0.05;
  config.num_targets = 5;
  Rng rng(6);

  size_t poisoned_hits = 0, recovered_hits = 0;
  double poisoned_disp = 0.0, recovered_disp = 0.0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
    RecoverOptions opts;
    opts.known_targets = t.attack_targets;
    const LdpRecover recover(*proto, opts);
    const auto recovered = recover.Recover(t.poisoned_freqs);

    poisoned_hits += CountInTopK(t.poisoned_freqs, t.attack_targets, 10);
    recovered_hits += CountInTopK(recovered, t.attack_targets, 10);
    poisoned_disp += TopKDisplacement(t.true_freqs, t.poisoned_freqs, 10);
    recovered_disp += TopKDisplacement(t.true_freqs, recovered, 10);
  }
  // The attack plants targets in the ranking; recovery evicts them.
  EXPECT_GT(poisoned_hits, static_cast<size_t>(2 * kTrials));
  EXPECT_LT(recovered_hits, poisoned_hits / 2);
  EXPECT_LT(recovered_disp, poisoned_disp);
}

}  // namespace
}  // namespace ldpr
