// The tentpole equivalence lock: partials computed per worker,
// serialized through the wire format, and merged in canonical chunk
// order are byte-identical to the in-process sharded aggregation
// paths (Aggregator::AddAllSharded for the malicious stream,
// FrequencyProtocol::SampleSupportCountsSharded for the genuine
// stream) — for every protocol, at every worker count, across the
// reports-per-chunk boundary (8191/8192/8193) and the users-per-chunk
// boundary (65535/65536/65537).  Plus the merger's validation ladder:
// duplicate idempotence, strict-mode loss errors, allow_missing
// coverage accounting, and cross-run spec rejection.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "shard/merge.h"
#include "shard/shard_task.h"
#include "sim/pipeline.h"

namespace ldpr {
namespace {

constexpr uint64_t kWorkerCounts[] = {1, 2, 8};

ShardTaskSpec MakeSpec(ProtocolKind protocol, uint64_t seed) {
  ShardTaskSpec spec;
  spec.protocol = protocol;
  spec.epsilon = 0.5;
  spec.dataset = "zipf";
  spec.attack = AttackKind::kMga;
  spec.beta = 0.05;
  spec.num_targets = 4;
  spec.seed = seed;
  return spec;
}

TEST(ShardMergeTest, MaliciousMergeMatchesAddAllShardedAtChunkBoundaries) {
  // beta = 0.05 makes m = n/19 exactly, so n = 19*m pins the crafted
  // batch size right at the reports-per-chunk boundary (8192).
  for (uint64_t m_target : {8191u, 8192u, 8193u}) {
    const Dataset dataset =
        MakeZipfDataset("z", /*d=*/16, /*n=*/19 * m_target, /*s=*/1.0,
                        /*shuffle_seed=*/7);
    for (ProtocolKind kind : kExtendedProtocolKinds) {
      auto plan = BuildShardTaskPlan(MakeSpec(kind, 77), dataset);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      ASSERT_EQ(plan->m, m_target) << ProtocolKindName(kind);
      ASSERT_EQ(plan->malicious_chunks, (m_target + 8191) / 8192);

      Aggregator reference(*plan->protocol);
      reference.AddAllSharded(plan->malicious_reports, 1);
      const std::vector<double> genuine_reference =
          plan->protocol->SampleSupportCountsSharded(plan->item_counts,
                                                     plan->genuine_seed, 1);

      for (uint64_t workers : kWorkerCounts) {
        const auto merged = RunShardTaskInProcess(*plan, workers);
        ASSERT_TRUE(merged.ok())
            << ProtocolKindName(kind) << ": " << merged.status().ToString();
        EXPECT_EQ(merged->malicious_counts, reference.support_counts())
            << ProtocolKindName(kind) << " m=" << m_target
            << " workers=" << workers;
        EXPECT_EQ(merged->genuine_counts, genuine_reference)
            << ProtocolKindName(kind) << " m=" << m_target
            << " workers=" << workers;
        EXPECT_EQ(merged->stats.users_covered, plan->n);
        EXPECT_EQ(merged->stats.reports_covered, plan->m);
        EXPECT_EQ(merged->stats.lines_rejected, 0u);
        EXPECT_EQ(merged->stats.duplicates_dropped, 0u);
      }
    }
  }
}

TEST(ShardMergeTest, GenuineMergeMatchesSampleShardedAtUserChunkBoundary) {
  for (uint64_t n : {65535u, 65536u, 65537u}) {
    const Dataset dataset =
        MakeZipfDataset("z", /*d=*/24, n, /*s=*/1.0, /*shuffle_seed=*/3);
    for (ProtocolKind kind : {ProtocolKind::kGrr, ProtocolKind::kOlh}) {
      ShardTaskSpec spec = MakeSpec(kind, 55);
      spec.attack = AttackKind::kNone;
      auto plan = BuildShardTaskPlan(spec, dataset);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      ASSERT_EQ(plan->genuine_chunks, (n + 65535) / 65536);
      ASSERT_EQ(plan->malicious_chunks, 0u);

      const std::vector<double> reference =
          plan->protocol->SampleSupportCountsSharded(plan->item_counts,
                                                     plan->genuine_seed, 1);
      for (uint64_t workers : kWorkerCounts) {
        const auto merged = RunShardTaskInProcess(*plan, workers);
        ASSERT_TRUE(merged.ok()) << merged.status().ToString();
        EXPECT_EQ(merged->genuine_counts, reference)
            << ProtocolKindName(kind) << " n=" << n << " workers=" << workers;
        EXPECT_EQ(merged->stats.users_covered, n);
      }
    }
  }
}

TEST(ShardMergeTest, MergedCountsReproduceThePoisoningTrialEstimate) {
  // Full-trial lock: the merged multi-process counts turn into
  // exactly the frequency estimate RunPoisoningTrial computes from
  // the same seed — the shard pipeline is the trial, distributed.
  const Dataset dataset =
      MakeZipfDataset("z", /*d=*/32, /*n=*/50000, /*s=*/1.0,
                      /*shuffle_seed=*/5);
  for (ProtocolKind kind : kExtendedProtocolKinds) {
    const ShardTaskSpec spec = MakeSpec(kind, 123);
    auto plan = BuildShardTaskPlan(spec, dataset);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    PipelineConfig config;
    config.attack = spec.attack;
    config.beta = spec.beta;
    config.num_targets = spec.num_targets;
    Rng rng(spec.seed);
    const TrialOutput trial =
        RunPoisoningTrial(*plan->protocol, config, dataset, rng);
    ASSERT_EQ(trial.m, plan->m) << ProtocolKindName(kind);

    const auto merged = RunShardTaskInProcess(*plan, 8);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    const ShardOutcome outcome = ComputeShardOutcome(*plan, dataset, *merged);
    EXPECT_EQ(outcome.n_eff, trial.n) << ProtocolKindName(kind);
    EXPECT_EQ(outcome.m_eff, trial.m) << ProtocolKindName(kind);
    EXPECT_EQ(outcome.poisoned_freqs, trial.poisoned_freqs)
        << ProtocolKindName(kind);
  }
}

TEST(ShardMergeTest, MaliciousCountsInvariantUnderChunkingChanges) {
  // Regrouping the crafted batch is an exact integer-sum reshuffle,
  // so any reports_per_chunk yields the same malicious counts.  (The
  // genuine stream has no such invariance: its per-chunk RNG streams
  // are keyed by chunk index, so chunking is part of that spec.)
  const Dataset dataset =
      MakeZipfDataset("z", /*d=*/16, /*n=*/20000, /*s=*/1.0,
                      /*shuffle_seed=*/9);
  const auto reference_plan =
      BuildShardTaskPlan(MakeSpec(ProtocolKind::kOue, 99), dataset);
  ASSERT_TRUE(reference_plan.ok());
  const auto reference = RunShardTaskInProcess(*reference_plan, 2);
  ASSERT_TRUE(reference.ok());

  for (uint64_t rpc : {1u, 100u, 1000u}) {
    ShardTaskSpec spec = MakeSpec(ProtocolKind::kOue, 99);
    spec.chunking.reports_per_chunk = rpc;
    auto plan = BuildShardTaskPlan(spec, dataset);
    ASSERT_TRUE(plan.ok());
    for (uint64_t workers : kWorkerCounts) {
      const auto merged = RunShardTaskInProcess(*plan, workers);
      ASSERT_TRUE(merged.ok()) << "rpc=" << rpc;
      EXPECT_EQ(merged->malicious_counts, reference->malicious_counts)
          << "rpc=" << rpc << " workers=" << workers;
      EXPECT_EQ(merged->genuine_counts, reference->genuine_counts);
    }
  }
}

// ------------------------------------------------- validation ladder

class ShardMergeLadderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeZipfDataset("z", /*d=*/16, /*n=*/20000, /*s=*/1.0,
                               /*shuffle_seed=*/11);
    ShardTaskSpec spec = MakeSpec(ProtocolKind::kGrr, 42);
    // Shrink chunks so 20k users split across several workers.
    spec.chunking.users_per_chunk = 2000;
    spec.chunking.reports_per_chunk = 200;
    auto plan = BuildShardTaskPlan(spec, dataset_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(*plan);
    for (uint64_t w = 0; w < 4; ++w) {
      for (const PartialRecord& rec : ComputeWorkerPartials(plan_, w, 4))
        lines_.push_back(EncodePartialLine(rec));
    }
    ASSERT_GE(lines_.size(), 4u);
  }

  Dataset dataset_;
  ShardTaskPlan plan_;
  std::vector<std::string> lines_;
};

TEST_F(ShardMergeLadderTest, DuplicateDeliveryIsIdempotent) {
  const auto clean = MergeShardPartials(plan_, lines_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  std::vector<std::string> twice = lines_;
  twice.push_back(lines_.front());
  twice.push_back(lines_.back());
  const auto merged = MergeShardPartials(plan_, twice);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->genuine_counts, clean->genuine_counts);
  EXPECT_EQ(merged->malicious_counts, clean->malicious_counts);
  EXPECT_EQ(merged->stats.duplicates_dropped, 2u);
  EXPECT_EQ(merged->stats.users_covered, clean->stats.users_covered);
}

TEST_F(ShardMergeLadderTest, ConflictingDuplicateIsAHardError) {
  // Same range, different counts: not a re-delivery but corruption
  // that passed the checksum — refuse even in allow_missing mode.
  auto decoded = DecodePartialLine(lines_.front());
  ASSERT_TRUE(decoded.ok());
  decoded->counts[0] += 1.0;
  std::vector<std::string> conflicted = lines_;
  conflicted.push_back(EncodePartialLine(*decoded));
  MergeOptions lenient;
  lenient.allow_missing = true;
  EXPECT_FALSE(MergeShardPartials(plan_, conflicted, lenient).ok());
}

TEST_F(ShardMergeLadderTest, MissingWorkerIsStrictErrorButLenientCoverage) {
  // Drop the first worker's lines (its genuine chunk range).
  std::vector<std::string> partial(lines_.begin() + 1, lines_.end());
  EXPECT_FALSE(MergeShardPartials(plan_, partial).ok());

  MergeOptions lenient;
  lenient.allow_missing = true;
  const auto merged = MergeShardPartials(plan_, partial, lenient);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(merged->stats.genuine_chunks_lost, 0u);
  EXPECT_LT(merged->stats.users_covered, plan_.n);
  EXPECT_GT(merged->stats.users_covered, 0u);
}

TEST_F(ShardMergeLadderTest, ForeignSpecIsAHardError) {
  auto decoded = DecodePartialLine(lines_.front());
  ASSERT_TRUE(decoded.ok());
  decoded->spec.seed ^= 1;  // a partial from some other run
  std::vector<std::string> mixed = lines_;
  mixed.front() = EncodePartialLine(*decoded);
  MergeOptions lenient;
  lenient.allow_missing = true;
  EXPECT_FALSE(MergeShardPartials(plan_, mixed, lenient).ok());
}

TEST_F(ShardMergeLadderTest, TornLineIsRejectionNotSilentLoss) {
  std::vector<std::string> torn = lines_;
  torn.front().resize(torn.front().size() / 2);
  EXPECT_FALSE(MergeShardPartials(plan_, torn).ok());  // strict

  MergeOptions lenient;
  lenient.allow_missing = true;
  const auto merged = MergeShardPartials(plan_, torn, lenient);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->stats.lines_rejected, 1u);
}

TEST_F(ShardMergeLadderTest, NothingSurvivingIsAlwaysAnError) {
  MergeOptions lenient;
  lenient.allow_missing = true;
  EXPECT_FALSE(MergeShardPartials(plan_, {}, lenient).ok());
}

}  // namespace
}  // namespace ldpr
