// runner/result_diff (the library behind tools/ldpr_diff): tree
// loading, the (scenario, table, row) join, exact vs tolerance
// gating, timing-column exemption, the structural error paths, and
// the golden drift table.

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/result_diff.h"

namespace ldpr {
namespace {

class LdprDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() / "ldpr_diff_test")
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  static void WriteFile(const std::string& path, const std::string& body) {
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    std::ofstream out(path, std::ios::binary);
    out << body;
    ASSERT_TRUE(out.good()) << path;
  }

  // One scenario dir with a v2 manifest and the given JSONL rows.
  void WriteScenario(const std::string& tree, const std::string& id,
                     const std::vector<std::string>& rows,
                     const std::string& timing_columns = "[]",
                     const std::string& knobs =
                         "\"seed\":7,\"scale\":0.01,\"trials\":2") {
    const std::string dir = root_ + "/" + tree + "/" + id;
    WriteFile(dir + "/manifest.json",
              "{\"schema_version\":2,\"scenario\":\"" + id + "\"," + knobs +
                  ",\"timing_columns\":" + timing_columns + "}\n");
    std::string jsonl;
    for (const std::string& row : rows) jsonl += row + "\n";
    WriteFile(dir + "/results.jsonl", jsonl);
  }

  static std::string Row(const std::string& id, const std::string& table,
                         const std::string& row, const std::string& values) {
    return "{\"scenario\":\"" + id + "\",\"table\":\"" + table +
           "\",\"row\":\"" + row + "\",\"values\":{" + values + "}}";
  }

  ResultTree Load(const std::string& tree) {
    auto loaded = LoadResultTree(root_ + "/" + tree);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return loaded.ok() ? std::move(*loaded) : ResultTree{};
  }

  std::string root_;
};

TEST_F(LdprDiffTest, RelativeDriftBasics) {
  EXPECT_DOUBLE_EQ(RelativeDrift(1.0, 1.0, 1e-12), 0);
  EXPECT_DOUBLE_EQ(RelativeDrift(1.0, 2.0, 1e-12), 0.5);
  EXPECT_DOUBLE_EQ(RelativeDrift(-1.0, 1.0, 1e-12), 2.0);
  // Both below the floor: noise, not drift.
  EXPECT_DOUBLE_EQ(RelativeDrift(1e-15, -1e-15, 1e-12), 0);
  // NaN on both sides is agreement; on one side is worst-case drift.
  EXPECT_DOUBLE_EQ(RelativeDrift(std::nan(""), std::nan(""), 1e-12), 0);
  EXPECT_TRUE(std::isnan(RelativeDrift(std::nan(""), 1.0, 1e-12)));
}

TEST_F(LdprDiffTest, IdenticalTreesAgreeInExactMode) {
  for (const char* tree : {"a", "b"}) {
    WriteScenario(tree, "s1",
                  {Row("s1", "T (zipf): MSE", "GRR", "\"M\":0.125,\"R\":0.5"),
                   Row("s1", "T (zipf): MSE", "OUE", "\"M\":0.25,\"R\":1.5")});
  }
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), {});
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].rows, 2u);
  EXPECT_EQ(report.scenarios[0].values, 4u);
  EXPECT_EQ(report.scenarios[0].max_drift, 0);
}

TEST_F(LdprDiffTest, PerturbedValueFailsExactAndNamesTheCell) {
  WriteScenario("a", "s1",
                {Row("s1", "T (zipf): MSE", "GRR", "\"M\":0.125,\"R\":0.5")});
  WriteScenario("b", "s1",
                {Row("s1", "T (zipf): MSE", "GRR", "\"M\":0.125,\"R\":0.6")});
  DiffOptions exact;
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), exact);
  ASSERT_EQ(report.violations.size(), 1u);
  const DiffViolation& v = report.violations[0];
  EXPECT_EQ(v.kind, "value-drift");
  EXPECT_EQ(v.scenario, "s1");
  EXPECT_EQ(v.table, "T (zipf): MSE");
  EXPECT_EQ(v.row, "GRR");
  EXPECT_EQ(v.column, "R");
  EXPECT_DOUBLE_EQ(v.a, 0.5);
  EXPECT_DOUBLE_EQ(v.b, 0.6);
  EXPECT_NEAR(v.drift, 1.0 / 6.0, 1e-12);

  // The same drift passes a loose tolerance and fails a tight one.
  DiffOptions loose;
  loose.exact = false;
  loose.tolerance = 0.2;
  EXPECT_TRUE(DiffResultTrees(Load("a"), Load("b"), loose).ok());
  DiffOptions tight;
  tight.exact = false;
  tight.tolerance = 0.1;
  EXPECT_FALSE(DiffResultTrees(Load("a"), Load("b"), tight).ok());
}

TEST_F(LdprDiffTest, TimingColumnsReportButNeverGate) {
  WriteScenario(
      "a", "s1",
      {Row("s1", "T", "GRR", "\"M\":0.125,\"secs/trial\":0.002")},
      "[\"secs/trial\"]");
  WriteScenario(
      "b", "s1",
      {Row("s1", "T", "GRR", "\"M\":0.125,\"secs/trial\":0.5")},
      "[\"secs/trial\"]");
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), {});
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.scenarios.size(), 1u);
  // Timing drift lands in the summary, not in values/violations.
  EXPECT_EQ(report.scenarios[0].values, 1u);
  EXPECT_GT(report.scenarios[0].max_timing_drift, 0.9);
  // The union rule: one side declaring the column suffices.
  WriteScenario("c", "s1",
                {Row("s1", "T", "GRR", "\"M\":0.125,\"secs/trial\":0.5")});
  EXPECT_TRUE(DiffResultTrees(Load("a"), Load("c"), {}).ok());
}

TEST_F(LdprDiffTest, MissingAndExtraRowsAreViolations) {
  WriteScenario("a", "s1",
                {Row("s1", "T", "GRR", "\"M\":1"),
                 Row("s1", "T", "OUE", "\"M\":2")});
  WriteScenario("b", "s1",
                {Row("s1", "T", "GRR", "\"M\":1"),
                 Row("s1", "T", "OLH", "\"M\":3")});
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), {});
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].kind, "missing-row");
  EXPECT_EQ(report.violations[0].row, "OUE");
  EXPECT_EQ(report.violations[1].kind, "extra-row");
  EXPECT_EQ(report.violations[1].row, "OLH");
}

TEST_F(LdprDiffTest, ColumnSchemaMismatchIsAViolation) {
  WriteScenario("a", "s1", {Row("s1", "T", "GRR", "\"M\":1,\"Old\":2")});
  WriteScenario("b", "s1", {Row("s1", "T", "GRR", "\"M\":1,\"New\":2")});
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), {});
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].kind, "schema-mismatch");
  EXPECT_EQ(report.violations[0].column, "Old");
  EXPECT_EQ(report.violations[1].kind, "schema-mismatch");
  EXPECT_EQ(report.violations[1].column, "New");
}

TEST_F(LdprDiffTest, MissingAndExtraScenariosAreViolations) {
  WriteScenario("a", "s1", {Row("s1", "T", "GRR", "\"M\":1")});
  WriteScenario("a", "s2", {Row("s2", "T", "GRR", "\"M\":1")});
  WriteScenario("b", "s1", {Row("s1", "T", "GRR", "\"M\":1")});
  WriteScenario("b", "s3", {Row("s3", "T", "GRR", "\"M\":1")});
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), {});
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].kind, "missing-scenario");
  EXPECT_EQ(report.violations[0].scenario, "s2");
  EXPECT_EQ(report.violations[1].kind, "extra-scenario");
  EXPECT_EQ(report.violations[1].scenario, "s3");
}

TEST_F(LdprDiffTest, RunKnobMismatchIsAViolationInBothModes) {
  WriteScenario("a", "s1", {Row("s1", "T", "GRR", "\"M\":1")});
  WriteScenario("b", "s1", {Row("s1", "T", "GRR", "\"M\":1")}, "[]",
                "\"seed\":8,\"scale\":0.01,\"trials\":2");
  for (const bool exact : {true, false}) {
    DiffOptions options;
    options.exact = exact;
    const DiffReport report = DiffResultTrees(Load("a"), Load("b"), options);
    ASSERT_EQ(report.violations.size(), 1u) << exact;
    EXPECT_EQ(report.violations[0].kind, "manifest-mismatch");
    EXPECT_NE(report.violations[0].detail.find("seed"), std::string::npos);
  }
}

TEST_F(LdprDiffTest, GoldenDriftTable) {
  WriteScenario("a", "s1",
                {Row("s1", "T", "GRR", "\"M\":1,\"R\":4"),
                 Row("s1", "T", "OUE", "\"M\":2,\"R\":8")});
  WriteScenario("b", "s1",
                {Row("s1", "T", "GRR", "\"M\":1,\"R\":5"),
                 Row("s1", "T", "OUE", "\"M\":2,\"R\":8")});
  const DiffReport report = DiffResultTrees(Load("a"), Load("b"), {});
  const std::string expected =
      "scenario        rows  values  max-drift   viol  worst cell\n"
      "------------------------------------------------------------------"
      "------------\n"
      "s1                 2       4        0.2      1  T | GRR | R\n"
      "\n"
      "violations:\n"
      "  [value-drift] s1 | T | GRR | R: 4 vs 5 (drift 0.2)\n";
  EXPECT_EQ(FormatDriftTable(report), expected);
}

TEST_F(LdprDiffTest, TopLevelManifestSelectsScenarios) {
  WriteScenario("a", "s1", {Row("s1", "T", "GRR", "\"M\":1")});
  WriteScenario("a", "s2", {Row("s2", "T", "GRR", "\"M\":1")});
  // The tree manifest lists only s2: s1 must not load.
  WriteFile(root_ + "/a/manifest.json",
            "{\"schema_version\":2,\"kind\":\"ldpr_result_tree\","
            "\"scenarios\":[{\"id\":\"s2\"}]}\n");
  const ResultTree tree = Load("a");
  ASSERT_EQ(tree.scenarios.size(), 1u);
  EXPECT_EQ(tree.scenarios[0].id, "s2");
}

TEST_F(LdprDiffTest, LoadErrorPaths) {
  EXPECT_FALSE(LoadResultTree(root_ + "/nonexistent").ok());

  // A directory with no manifests anywhere is not a result tree.
  std::filesystem::create_directories(root_ + "/empty/sub");
  EXPECT_FALSE(LoadResultTree(root_ + "/empty").ok());

  // Malformed manifest JSON.
  WriteFile(root_ + "/badman/s1/manifest.json", "{nope\n");
  WriteFile(root_ + "/badman/s1/results.jsonl", "");
  EXPECT_FALSE(LoadResultTree(root_ + "/badman").ok());

  // Malformed row JSON.
  WriteScenario("badrow", "s1", {"{broken"});
  EXPECT_FALSE(LoadResultTree(root_ + "/badrow").ok());

  // Duplicate (table, row) key.
  WriteScenario("dup", "s1",
                {Row("s1", "T", "GRR", "\"M\":1"),
                 Row("s1", "T", "GRR", "\"M\":2")});
  const auto dup = LoadResultTree(root_ + "/dup");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate row key"),
            std::string::npos);

  // A row claiming a different scenario than its manifest.
  WriteScenario("wrongid", "s1", {Row("other", "T", "GRR", "\"M\":1")});
  EXPECT_FALSE(LoadResultTree(root_ + "/wrongid").ok());

  // Non-numeric metric value.
  WriteScenario("badval", "s1", {Row("s1", "T", "GRR", "\"M\":\"oops\"")});
  EXPECT_FALSE(LoadResultTree(root_ + "/badval").ok());
}

TEST_F(LdprDiffTest, ExactModeIgnoresTheNoiseFloor) {
  // Sub-floor differences are still determinism breaks in exact
  // mode; only tolerance mode treats near-zero noise as drift-free.
  WriteScenario("a", "s1", {Row("s1", "T", "GRR", "\"M\":1e-15")});
  WriteScenario("b", "s1", {Row("s1", "T", "GRR", "\"M\":-1e-15")});
  DiffOptions exact;
  EXPECT_FALSE(DiffResultTrees(Load("a"), Load("b"), exact).ok());
  DiffOptions tolerant;
  tolerant.exact = false;
  tolerant.tolerance = 0.01;
  EXPECT_TRUE(DiffResultTrees(Load("a"), Load("b"), tolerant).ok());
}

TEST_F(LdprDiffTest, NullMetricLoadsAsNaNAndMatchesNull) {
  WriteScenario("a", "s1", {Row("s1", "T", "GRR", "\"M\":null")});
  WriteScenario("b", "s1", {Row("s1", "T", "GRR", "\"M\":null")});
  WriteScenario("c", "s1", {Row("s1", "T", "GRR", "\"M\":1")});
  EXPECT_TRUE(DiffResultTrees(Load("a"), Load("b"), {}).ok());
  // NaN vs a number is a violation even under a loose tolerance.
  DiffOptions loose;
  loose.exact = false;
  loose.tolerance = 100;
  EXPECT_FALSE(DiffResultTrees(Load("a"), Load("c"), loose).ok());
}

}  // namespace
}  // namespace ldpr
