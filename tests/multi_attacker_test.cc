#include "attack/multi_attacker.h"

#include <gtest/gtest.h>

#include "attack/adaptive.h"
#include "attack/mga.h"
#include "ldp/grr.h"

namespace ldpr {
namespace {

TEST(MultiAttackerTest, CraftsExactTotal) {
  const Grr grr(20, 0.5);
  const auto attack = MakeMultiAdaptive(5);
  Rng rng(1);
  EXPECT_EQ(attack->Craft(grr, 1234, rng).size(), 1234u);
  EXPECT_EQ(attack->Craft(grr, 0, rng).size(), 0u);
}

TEST(MultiAttackerTest, NameEncodesCount) {
  EXPECT_EQ(MakeMultiAdaptive(5)->Name(), "MUL-AA-x5");
}

TEST(MultiAttackerTest, TargetsAreDeduplicatedUnion) {
  std::vector<std::unique_ptr<Attack>> parts;
  parts.push_back(std::make_unique<MgaAttack>(std::vector<ItemId>{1, 2}));
  parts.push_back(std::make_unique<MgaAttack>(std::vector<ItemId>{2, 3}));
  const MultiAttacker multi(std::move(parts));
  const auto t = multi.targets();
  EXPECT_EQ(t, (std::vector<ItemId>{1, 2, 3}));
}

TEST(MultiAttackerTest, MixtureOfFixedDistributions) {
  // Two attackers with disjoint point masses: the combined reports
  // cover both, at roughly half weight each.
  const size_t d = 10;
  const Grr grr(d, 0.5);
  std::vector<double> d1(d, 0.0), d2(d, 0.0);
  d1[0] = 1.0;
  d2[9] = 1.0;
  std::vector<std::unique_ptr<Attack>> parts;
  parts.push_back(std::make_unique<AdaptiveAttack>(d1));
  parts.push_back(std::make_unique<AdaptiveAttack>(d2));
  const MultiAttacker multi(std::move(parts));

  Rng rng(2);
  std::vector<int> counts(d, 0);
  const size_t m = 20000;
  for (const Report& r : multi.Craft(grr, m, rng)) ++counts[r.value];
  EXPECT_EQ(counts[0] + counts[9], static_cast<int>(m));
  EXPECT_NEAR(static_cast<double>(counts[0]) / m, 0.5, 0.02);
}

TEST(MultiAttackerTest, SingleAttackerDegeneratesToComponent) {
  const Grr grr(8, 0.5);
  std::vector<double> dist(8, 0.0);
  dist[3] = 1.0;
  std::vector<std::unique_ptr<Attack>> parts;
  parts.push_back(std::make_unique<AdaptiveAttack>(dist));
  const MultiAttacker multi(std::move(parts));
  Rng rng(3);
  for (const Report& r : multi.Craft(grr, 100, rng)) EXPECT_EQ(r.value, 3u);
}

TEST(MultiAttackerDeathTest, RejectsEmptyList) {
  EXPECT_DEATH(MultiAttacker({}), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
