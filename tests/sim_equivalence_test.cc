// Validates the fast closed-form aggregation samplers against exact
// per-user simulation: means and variances of the resulting frequency
// estimates agree for every protocol (the ablation DESIGN.md section 5
// calls out).

#include <memory>

#include <cmath>

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "sim/pipeline.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

class SimEquivalenceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SimEquivalenceTest, MeansAgree) {
  const size_t d = 10;
  const size_t n = 5000;
  const auto proto = MakeProtocol(GetParam(), d, 0.8);
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[0] = n / 2;
  item_counts[5] = n / 4;
  item_counts[9] = n - item_counts[0] - item_counts[5];

  Rng rng(21);
  RunningStat fast, exact;
  const int kTrials = 25;
  for (int t = 0; t < kTrials; ++t) {
    const auto cf = proto->SampleSupportCounts(item_counts, rng);
    fast.Add(proto->EstimateFrequencies(cf, n)[0]);
    const auto ce = ExactGenuineSupportCounts(*proto, item_counts, rng);
    exact.Add(proto->EstimateFrequencies(ce, n)[0]);
  }
  const double sigma =
      std::sqrt(proto->FrequencyVariance(0.5, n) / kTrials);
  EXPECT_NEAR(fast.mean(), 0.5, 5.0 * sigma);
  EXPECT_NEAR(exact.mean(), 0.5, 5.0 * sigma);
  EXPECT_NEAR(fast.mean(), exact.mean(), 8.0 * sigma);
}

TEST_P(SimEquivalenceTest, VariancesAgreeWithTheory) {
  const size_t d = 8;
  const size_t n = 3000;
  const auto proto = MakeProtocol(GetParam(), d, 1.0);
  std::vector<uint64_t> item_counts(d, n / d);

  Rng rng(22);
  RunningStat fast, exact;
  const int kTrials = 150;
  for (int t = 0; t < kTrials; ++t) {
    const auto cf = proto->SampleSupportCounts(item_counts, rng);
    fast.Add(proto->EstimateFrequencies(cf, n)[3]);
    const auto ce = ExactGenuineSupportCounts(*proto, item_counts, rng);
    exact.Add(proto->EstimateFrequencies(ce, n)[3]);
  }
  const double theory = proto->FrequencyVariance(1.0 / d, n);
  EXPECT_NEAR(fast.variance(), theory, 0.45 * theory);
  EXPECT_NEAR(exact.variance(), theory, 0.45 * theory);
}

TEST_P(SimEquivalenceTest, SupportCountTotalsConsistent) {
  // Totals must match the per-report support budget: n for GRR
  // (one supported item per report); for OUE/OLH expectation is
  // n * (p + (d-1) q).
  const size_t d = 12;
  const size_t n = 20000;
  const auto proto = MakeProtocol(GetParam(), d, 0.5);
  std::vector<uint64_t> item_counts(d, n / d);
  Rng rng(23);
  const auto counts = proto->SampleSupportCounts(item_counts, rng);
  double total = 0.0;
  for (double c : counts) total += c;
  const double expected =
      static_cast<double>(n) * (proto->p() + (d - 1) * proto->q());
  EXPECT_NEAR(total / expected, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimEquivalenceTest,
                         ::testing::Values(ProtocolKind::kGrr,
                                           ProtocolKind::kOue,
                                           ProtocolKind::kOlh),
                         [](const auto& param_info) {
                           return std::string(ProtocolKindName(param_info.param));
                         });

}  // namespace
}  // namespace ldpr
