// ValidateExperimentInputs: the status-based guard that keeps bad CLI
// knobs (empty datasets, zero trials, out-of-range epsilon/beta/eta,
// degenerate target counts) from reaching LDPR_CHECK aborts in the
// aggregation and attack layers.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "sim/experiment.h"

namespace ldpr {
namespace {

ExperimentConfig OkConfig() {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kGrr;
  config.epsilon = 1.0;
  config.trials = 2;
  config.pipeline.attack = AttackKind::kMga;
  config.pipeline.beta = 0.05;
  config.pipeline.num_targets = 3;
  return config;
}

Dataset OkDataset() { return MakeZipfDataset("z", 16, 1000, 1.0, 1); }

TEST(ValidateExperimentInputsTest, AcceptsSaneInputs) {
  EXPECT_TRUE(ValidateExperimentInputs(OkConfig(), OkDataset()).ok());
}

TEST(ValidateExperimentInputsTest, RejectsEmptyDataset) {
  Dataset empty;
  empty.name = "empty";
  empty.item_counts = {0, 0, 0};
  const Status status = ValidateExperimentInputs(OkConfig(), empty);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("empty"), std::string::npos);
}

TEST(ValidateExperimentInputsTest, RejectsDegenerateDomain) {
  Dataset tiny;
  tiny.name = "tiny";
  tiny.item_counts = {5};
  EXPECT_EQ(ValidateExperimentInputs(OkConfig(), tiny).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateExperimentInputsTest, RejectsBadScalarKnobs) {
  const Dataset ds = OkDataset();
  auto config = OkConfig();
  config.epsilon = 0.0;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.trials = 0;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.pipeline.beta = 1.0;  // m = beta*n/(1-beta) would divide by 0
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.pipeline.beta = -0.1;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.eta = -1.0;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());
}

TEST(ValidateExperimentInputsTest, RejectsBadAttackShapes) {
  const Dataset ds = OkDataset();
  auto config = OkConfig();
  config.pipeline.num_targets = 0;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.pipeline.num_targets = ds.domain_size() + 1;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.pipeline.attack = AttackKind::kManip;
  config.pipeline.manip_domain_fraction = 1.5;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  config = OkConfig();
  config.pipeline.attack = AttackKind::kMultiAdaptive;
  config.pipeline.num_attackers = 0;
  EXPECT_FALSE(ValidateExperimentInputs(config, ds).ok());

  // A target count that would be invalid for MGA is fine for AA,
  // which ignores it.
  config = OkConfig();
  config.pipeline.attack = AttackKind::kAdaptive;
  config.pipeline.num_targets = 0;
  EXPECT_TRUE(ValidateExperimentInputs(config, ds).ok());
}

}  // namespace
}  // namespace ldpr
