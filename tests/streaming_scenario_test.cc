// Determinism + wave-injection locks on the streaming_* scenarios:
// the same in-process run executed twice is byte-identical (the
// same-process half of the 1-vs-3-thread ctest determinism gate), an
// injected mid-stream MGA wave yields a finite windows-to-detection
// while the clean cell reports the -1 sentinel, and the ramping /
// drifting arrival schedules are locked against naive reference
// replays of the quota arithmetic and of ReplayStream.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ldp/factory.h"
#include "runner/result_sink.h"
#include "runner/scenario_runner.h"
#include "scenarios.h"
#include "stream/streaming_engine.h"
#include "util/metrics.h"

namespace ldpr {
namespace bench {
namespace {

class StreamingScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllScenarios(); }
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs one scenario into a CSV file and returns the file's bytes.
std::string RunToCsv(const Scenario& scenario, const std::string& path) {
  std::vector<std::unique_ptr<ResultSink>> sinks;
  sinks.push_back(std::make_unique<CsvSink>(path));
  MultiSink sink(std::move(sinks));
  ScenarioRunOptions options;
  options.seed = 424242;
  options.trials = 2;
  options.scale = 0.01;
  const auto report = RunScenario(scenario, options, sink);
  EXPECT_TRUE(report.ok()) << scenario.spec.id << ": "
                           << report.status().ToString();
  EXPECT_TRUE(sink.Finish().ok());
  return ReadFileOrDie(path);
}

TEST_F(StreamingScenarioTest, DoubleRunIsByteIdentical) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ldpr_streaming_det")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  for (const char* id : {"streaming_equiv", "streaming_wave",
                         "streaming_ramp", "streaming_drift"}) {
    const Scenario* scenario = ScenarioRegistry::Global().Find(id);
    ASSERT_NE(scenario, nullptr) << id;
    const std::string first = RunToCsv(*scenario, dir + "/a.csv");
    const std::string second = RunToCsv(*scenario, dir + "/b.csv");
    EXPECT_FALSE(first.empty()) << id;
    EXPECT_EQ(first, second) << id << " is not run-to-run deterministic";
  }
  std::filesystem::remove_all(dir);
}

// Collects rows in memory so assertions can see the raw doubles
// instead of parsing a rendered file.
class RecordingSink : public ResultSink {
 public:
  struct Row {
    std::string label;
    std::vector<double> values;
  };

  void BeginTable(const std::string& /*title*/,
                  const std::vector<std::string>& columns) override {
    columns_ = columns;
  }
  void AddRow(const std::string& label,
              const std::vector<double>& values) override {
    rows_.push_back({label, values});
  }
  Status Finish() override { return Status::Ok(); }

  double Value(const Row& row, const std::string& column) const {
    const auto it = std::find(columns_.begin(), columns_.end(), column);
    EXPECT_NE(it, columns_.end()) << column;
    return row.values[static_cast<size_t>(it - columns_.begin())];
  }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

TEST_F(StreamingScenarioTest, WaveCellDetectedCleanCellReportsSentinel) {
  const Scenario* scenario =
      ScenarioRegistry::Global().Find("streaming_wave");
  ASSERT_NE(scenario, nullptr);

  RecordingSink sink;
  ScenarioRunOptions options;
  options.seed = 7;
  options.trials = 2;
  options.scale = 0.02;  // 2000-report streams, 200-report windows
  const auto report = RunScenario(*scenario, options, sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(sink.rows().size(), 5u);  // one row per extended protocol
  for (const RecordingSink::Row& row : sink.rows()) {
    // No-attack cell: the -1 sentinel, averaged over trials, stays -1.
    EXPECT_EQ(sink.Value(row, "CleanDetect"), -1.0) << row.label;
    // Attacked cell: every trial caught the wave within a couple of
    // windows of onset.
    EXPECT_EQ(sink.Value(row, "DetectRate"), 1.0) << row.label;
    const double latency = sink.Value(row, "WaveDetect");
    EXPECT_GE(latency, 1.0) << row.label;
    EXPECT_LE(latency, 4.0) << row.label;
    // Poisoned windows push the estimate off the genuine truth.
    EXPECT_GT(sink.Value(row, "WaveMSE"), 0.0) << row.label;
  }
}

// Reference replay of the attacker-quota arithmetic in
// ArrivalStream::Next: slot i is an attacker slot iff the running
// integral of AttackerFractionAt crosses a new integer.  Consumes no
// randomness, so it can be recomputed here independently.
std::vector<uint8_t> NaiveQuotaFlags(const StreamSpec& spec) {
  std::vector<uint8_t> flags(spec.total_reports, 0);
  double integral = 0.0;
  uint64_t used = 0;
  for (size_t i = 0; i < spec.total_reports; ++i) {
    integral += AttackerFractionAt(spec, i);
    const uint64_t quota = static_cast<uint64_t>(std::floor(integral));
    if (quota > used && spec.num_targets > 0) {
      flags[i] = 1;
      ++used;
    }
  }
  return flags;
}

TEST_F(StreamingScenarioTest, RampScheduleIsMonotoneAndMatchesNaiveQuota) {
  const size_t d = 32;
  StreamSpec spec;
  spec.total_reports = 3000;
  spec.window_reports = 300;
  spec.item_counts.assign(d, 1);
  spec.wave = WaveShape::kRamp;
  spec.attacker_fraction = 0.3;
  spec.num_targets = 5;

  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(ProtocolKind::kGrr, d, 1.0);
  StreamEngineOptions options;
  options.run_recovery = false;
  const StreamSummary summary = RunStream(*protocol, spec, options, 31337);
  const StreamReplay replay = ReplayStream(*protocol, spec, 31337);
  const std::vector<uint8_t> expected = NaiveQuotaFlags(spec);

  // The engine's arrival schedule is exactly the quota replay.
  ASSERT_EQ(replay.is_attacker.size(), expected.size());
  EXPECT_EQ(replay.is_attacker, expected);

  // Per-window attacker counts follow the replay and ramp
  // monotonically from (near) zero to the peak-rate windows.
  ASSERT_EQ(summary.windows.size(), 10u);
  size_t prev = 0;
  for (const WindowResult& w : summary.windows) {
    size_t from_flags = 0;
    for (size_t i = w.first_report; i < w.first_report + w.report_count; ++i)
      from_flags += expected[i];
    EXPECT_EQ(w.attackers, from_flags) << "window " << w.index;
    EXPECT_GE(w.attackers, prev) << "window " << w.index;
    prev = w.attackers;
  }
  // Linear 0 -> 0.3 ramp: the last window sits near the 0.3 rate, the
  // first near zero.
  EXPECT_LE(summary.windows.front().attackers, 10u);
  EXPECT_GT(summary.windows.back().attackers, 70u);
  EXPECT_LT(summary.windows.back().attackers, 100u);
}

TEST_F(StreamingScenarioTest, WaveScheduleConfinesAttackersToTheWave) {
  StreamSpec spec;
  spec.total_reports = 2000;
  spec.window_reports = 200;
  spec.item_counts.assign(16, 1);
  spec.wave = WaveShape::kWave;
  spec.attacker_fraction = 0.25;
  spec.wave_start = 600;
  spec.wave_end = 1400;
  spec.num_targets = 4;

  const std::vector<uint8_t> expected = NaiveQuotaFlags(spec);
  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(ProtocolKind::kOlh, 16, 1.0);
  const StreamReplay replay = ReplayStream(*protocol, spec, 5);
  EXPECT_EQ(replay.is_attacker, expected);

  size_t inside = 0, outside = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    if (i >= spec.wave_start && i < spec.wave_end) {
      inside += expected[i];
    } else {
      outside += expected[i];
    }
  }
  // 25% of the 800-slot wave, zero elsewhere (the integral is flat
  // outside the wave so no new integer can be crossed).
  EXPECT_EQ(outside, 0u);
  EXPECT_EQ(inside, 200u);
}

TEST_F(StreamingScenarioTest, DriftingZipfShiftsMassAndSumsToReplay) {
  const size_t d = 64;
  StreamSpec spec;
  spec.total_reports = 4000;
  spec.window_reports = 400;
  spec.domain_size = d;
  spec.zipf_s_start = 1.8;
  spec.zipf_s_end = 0.4;
  spec.zipf_segments = 8;

  const std::unique_ptr<FrequencyProtocol> protocol =
      MakeProtocol(ProtocolKind::kGrr, d, 1.0);
  StreamEngineOptions options;
  options.run_recovery = false;
  const StreamSummary summary = RunStream(*protocol, spec, options, 2024);
  const StreamReplay replay = ReplayStream(*protocol, spec, 2024);

  // Per-window genuine tallies partition the replay's ground truth.
  std::vector<uint64_t> summed(d, 0);
  for (const WindowResult& w : summary.windows) {
    ASSERT_EQ(w.genuine_tally.size(), d);
    EXPECT_EQ(w.attackers, 0u);
    for (size_t v = 0; v < d; ++v) summed[v] += w.genuine_tally[v];
  }
  EXPECT_EQ(summed, replay.genuine_item_counts);

  // The drift is real: Zipf(1.8) concentrates mass that Zipf(0.4)
  // spreads out, so the first and last windows' genuine frequency
  // vectors are far apart in L1...
  const auto freqs = [](const std::vector<uint64_t>& tally) {
    uint64_t n = 0;
    for (uint64_t c : tally) n += c;
    std::vector<double> f(tally.size());
    for (size_t v = 0; v < f.size(); ++v)
      f[v] = static_cast<double>(tally[v]) / static_cast<double>(n);
    return f;
  };
  const std::vector<double> first = freqs(summary.windows.front().genuine_tally);
  const std::vector<double> last = freqs(summary.windows.back().genuine_tally);
  EXPECT_GT(L1Distance(first, last), 0.5);

  // ...and the peak frequency decays monotonically in expectation;
  // lock the endpoints rather than every noisy intermediate window.
  const double first_peak = *std::max_element(first.begin(), first.end());
  const double last_peak = *std::max_element(last.begin(), last.end());
  EXPECT_GT(first_peak, 2.0 * last_peak);
}

}  // namespace
}  // namespace bench
}  // namespace ldpr
