#include "ldp/oue.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(OueTest, ProbabilitiesMatchEq5) {
  const Oue oue(20, 1.0);
  EXPECT_DOUBLE_EQ(oue.p(), 0.5);
  EXPECT_NEAR(oue.q(), 1.0 / (std::exp(1.0) + 1.0), 1e-12);
}

TEST(OueTest, PerturbedVectorHasDomainLength) {
  const Oue oue(12, 0.5);
  Rng rng(1);
  const Report r = oue.Perturb(4, rng);
  EXPECT_EQ(r.bits.size(), 12u);
}

TEST(OueTest, OwnBitKeptWithHalf) {
  const Oue oue(10, 0.5);
  Rng rng(2);
  int ones = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) ones += oue.Perturb(7, rng).bits[7];
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.5, 0.01);
}

TEST(OueTest, OtherBitsFlipWithQ) {
  const Oue oue(10, 0.5);
  Rng rng(3);
  int ones = 0;
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) ones += oue.Perturb(7, rng).bits[2];
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, oue.q(), 0.01);
}

TEST(OueTest, SupportsReadsBits) {
  const Oue oue(4, 1.0);
  Report r;
  r.bits = {1, 0, 1, 0};
  EXPECT_TRUE(oue.Supports(r, 0));
  EXPECT_FALSE(oue.Supports(r, 1));
  EXPECT_TRUE(oue.Supports(r, 2));
}

TEST(OueTest, EstimationIsUnbiased) {
  const size_t d = 6;
  const Oue oue(d, 0.5);
  Rng rng(4);
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[1] = 30000;
  item_counts[4] = 70000;
  const auto counts = oue.SampleSupportCounts(item_counts, rng);
  const auto freqs = oue.EstimateFrequencies(counts, 100000);
  EXPECT_NEAR(freqs[1], 0.3, 0.02);
  EXPECT_NEAR(freqs[4], 0.7, 0.02);
  EXPECT_NEAR(freqs[0], 0.0, 0.02);
}

TEST(OueTest, VarianceIndependentOfFrequencyAndMatchesEq7) {
  const Oue oue(50, 1.0);
  const double e = std::exp(1.0);
  const size_t n = 1234;
  const double expected = n * 4.0 * e / ((e - 1.0) * (e - 1.0));
  EXPECT_NEAR(oue.CountVariance(0.0, n), expected, 1e-9);
  EXPECT_NEAR(oue.CountVariance(0.9, n), expected, 1e-9);
}

TEST(OueTest, EmpiricalVarianceMatchesEq7) {
  const size_t d = 8;
  const Oue oue(d, 1.0);
  Rng rng(5);
  const size_t n = 4000;
  std::vector<uint64_t> item_counts(d, n / d);
  RunningStat est;
  for (int trial = 0; trial < 400; ++trial) {
    const auto counts = oue.SampleSupportCounts(item_counts, rng);
    est.Add(oue.EstimateFrequencies(counts, n)[0]);
  }
  const double theory = oue.FrequencyVariance(1.0 / d, n);
  EXPECT_NEAR(est.variance(), theory, 0.3 * theory);
}

TEST(OueTest, ExpectedOnesFormula) {
  const size_t d = 100;
  const Oue oue(d, 0.5);
  EXPECT_NEAR(oue.ExpectedOnes(), 0.5 + (d - 1) * oue.q(), 1e-12);

  // Empirically: mean 1-count of genuine reports.
  Rng rng(6);
  double total_ones = 0.0;
  const int kTrials = 3000;
  for (int i = 0; i < kTrials; ++i) {
    const Report r = oue.Perturb(0, rng);
    for (uint8_t b : r.bits) total_ones += b;
  }
  EXPECT_NEAR(total_ones / kTrials, oue.ExpectedOnes(), 0.5);
}

TEST(OueTest, CraftSupportingReportIsOneHot) {
  const Oue oue(9, 0.5);
  Rng rng(7);
  const Report r = oue.CraftSupportingReport(5, rng);
  for (ItemId v = 0; v < 9; ++v) EXPECT_EQ(oue.Supports(r, v), v == 5);
}

TEST(OueDeathTest, SupportsChecksVectorLength) {
  const Oue oue(4, 1.0);
  Report r;  // bits empty
  EXPECT_DEATH((void)oue.Supports(r, 0), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
