#include "recover/detection.h"

#include <cmath>

#include <gtest/gtest.h>

#include "attack/mga.h"
#include "ldp/factory.h"
#include "ldp/grr.h"
#include "ldp/olh.h"
#include "ldp/oue.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(DetectionFilterTest, FlagsReportsSupportingTargets) {
  const Grr grr(10, 0.5);
  DetectionFilter filter(grr, {3});
  Report hit;
  hit.value = 3;
  Report miss;
  miss.value = 4;
  EXPECT_TRUE(filter.IsSuspicious(hit));
  EXPECT_FALSE(filter.IsSuspicious(miss));
}

TEST(DetectionFilterTest, OfferDropsSuspicious) {
  const Grr grr(10, 0.5);
  DetectionFilter filter(grr, {0});
  Report hit, miss;
  hit.value = 0;
  miss.value = 5;
  filter.Offer(hit);
  filter.Offer(miss);
  filter.Offer(miss);
  EXPECT_EQ(filter.offered(), 3u);
  EXPECT_EQ(filter.kept(), 2u);
}

TEST(DetectionFilterTest, RemovesAllMgaReports) {
  // Every MGA report supports a target by construction, so Detection
  // discards the entire malicious cohort.
  const Oue oue(50, 0.5);
  MgaOptions opts;
  opts.pad_oue = false;
  const MgaAttack attack({4, 9}, opts);
  Rng rng(1);
  DetectionFilter filter(oue, {4, 9});
  filter.OfferAll(attack.Craft(oue, 300, rng));
  EXPECT_EQ(filter.kept(), 0u);
}

TEST(DetectionFilterTest, ThresholdsMatchProtocolSignatures) {
  const Grr grr(20, 0.5);
  const Oue oue(20, 0.5);
  const Olh olh(20, 0.5);
  EXPECT_EQ(DetectionFilter(grr, {1, 2, 3, 4}).threshold(), 1u);
  EXPECT_EQ(DetectionFilter(oue, {1, 2, 3, 4}).threshold(), 4u);
  EXPECT_EQ(DetectionFilter(olh, {1, 2, 3, 4}).threshold(), 2u);
}

TEST(DetectionFilterTest, OueCollateralDamageMatchesTheory) {
  // A genuine OUE report is flagged only when *all* r target bits
  // flip to 1 — probability q^r for non-target holders.  Most genuine
  // users survive, but survivors' target rows are biased (the
  // conditional bit law loses mass), which is the collateral damage
  // the paper attributes to Detection.
  const size_t d = 40;
  const size_t r = 3;
  const Oue oue(d, 0.5);
  Rng rng(2);
  DetectionFilter filter(oue, {0, 1, 2});
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i)
    filter.Offer(oue.Perturb(static_cast<ItemId>(10 + i % 20), rng));
  const double keep_rate =
      static_cast<double>(filter.kept()) / static_cast<double>(n);
  const double expected = 1.0 - std::pow(oue.q(), static_cast<double>(r));
  EXPECT_NEAR(keep_rate, expected, 0.01);
  // Target rows under-estimate: their true frequency here is 0, and
  // conditioning pushes the estimate below the unbiased value.
  const auto freqs = filter.Estimate();
  EXPECT_LT(freqs[0], 0.005);
}

// The fast sampled path matches the streaming path in expectation for
// each protocol that has one.
class DetectionFastPathTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DetectionFastPathTest, FastAndStreamingAgree) {
  const size_t d = 24;
  const auto proto = MakeProtocol(GetParam(), d, 0.8);
  const std::vector<ItemId> targets = {1, 5};
  std::vector<uint64_t> item_counts(d, 500);

  RunningStat fast_kept, slow_kept;
  RunningStat fast_f10, slow_f10;
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    DetectionFilter fast(*proto, targets);
    fast.OfferSampledGenuine(item_counts, rng);
    fast_kept.Add(static_cast<double>(fast.kept()));
    fast_f10.Add(fast.Estimate()[10]);

    DetectionFilter slow(*proto, targets);
    for (ItemId item = 0; item < d; ++item) {
      for (uint64_t u = 0; u < item_counts[item]; ++u)
        slow.Offer(proto->Perturb(item, rng));
    }
    slow_kept.Add(static_cast<double>(slow.kept()));
    slow_f10.Add(slow.Estimate()[10]);
  }
  const double n = 24.0 * 500.0;
  EXPECT_NEAR(fast_kept.mean() / n, slow_kept.mean() / n, 0.02);
  // Means over 30 independent trials; ~4 sigma of the trial-mean.
  EXPECT_NEAR(fast_f10.mean(), slow_f10.mean(), 0.018);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DetectionFastPathTest,
                         ::testing::Values(ProtocolKind::kGrr,
                                           ProtocolKind::kOue,
                                           ProtocolKind::kOlh),
                         [](const auto& param_info) {
                           return std::string(ProtocolKindName(param_info.param));
                         });

TEST(DetectionFilterTest, EstimateNormalizesByKeptCount) {
  const size_t d = 16;
  const Grr grr(d, 1.0);
  Rng rng(4);
  DetectionFilter filter(grr, {0});
  // Genuine users all hold item 8 (never a target).
  std::vector<uint64_t> item_counts(d, 0);
  item_counts[8] = 30000;
  filter.OfferSampledGenuine(item_counts, rng);
  const auto freqs = filter.Estimate();
  // Conditioned on not reporting item 0, the kept fraction is 1 - q
  // and item 8's support rate renormalizes to p/(1-q); the adjusted
  // estimate is therefore biased to (p/(1-q) - q)/(p - q) > 1 — the
  // collateral-damage bias the paper attributes to Detection.
  const double p = grr.p(), q = grr.q();
  const double expected = (p / (1.0 - q) - q) / (p - q);
  EXPECT_GT(expected, 1.0);
  EXPECT_NEAR(freqs[8], expected, 0.03);
}

// Windowed streaming contract: ResetWindow must clear per-window
// state completely, so a filter that saw window A before the reset
// behaves on window B exactly like a fresh filter fed only window B —
// no kept-count leakage across the boundary — while the lifetime
// totals keep accumulating.
TEST(DetectionFilterTest, ResetWindowLeavesNoCrossWindowState) {
  const size_t d = 20;
  for (ProtocolKind kind :
       {ProtocolKind::kGrr, ProtocolKind::kOue, ProtocolKind::kOlh}) {
    const auto proto = MakeProtocol(kind, d, 0.8);
    const std::vector<ItemId> targets = {2, 7};

    // Window A: genuine reports plus a small MGA cohort (so some
    // reports are dropped and kept_counts_ accumulates mass).  Window
    // B: genuine reports from a disjoint item mix.
    Rng rng(11);
    ReportBatch window_a, window_b;
    {
      ReportBatch::Builder builder(window_a);
      for (ItemId item = 0; item < d; ++item)
        proto->AppendGenuineReports(item, 40, rng, builder);
      const MgaAttack attack(targets);
      attack.CraftBatch(*proto, 60, rng, builder);
    }
    {
      ReportBatch::Builder builder(window_b);
      for (ItemId item = 0; item < d / 2; ++item)
        proto->AppendGenuineReports(item, 50, rng, builder);
    }

    DetectionFilter streaming(*proto, targets);
    streaming.OfferStreaming(window_a);
    const size_t a_offered = streaming.offered();
    const size_t a_kept = streaming.kept();
    EXPECT_EQ(a_offered, window_a.size());
    EXPECT_LT(a_kept, a_offered) << ProtocolKindName(kind);

    streaming.ResetWindow();
    EXPECT_EQ(streaming.offered(), 0u);
    EXPECT_EQ(streaming.kept(), 0u);
    streaming.OfferStreaming(window_b);

    // A fresh filter that never saw window A.
    DetectionFilter fresh(*proto, targets);
    fresh.OfferStreaming(window_b);

    EXPECT_EQ(streaming.offered(), fresh.offered()) << ProtocolKindName(kind);
    EXPECT_EQ(streaming.kept(), fresh.kept()) << ProtocolKindName(kind);
    const auto streamed = streaming.Estimate();
    const auto expected = fresh.Estimate();
    for (size_t v = 0; v < d; ++v) {
      EXPECT_EQ(streamed[v], expected[v])
          << ProtocolKindName(kind) << " item " << v;
    }

    // Lifetime totals span both windows.
    EXPECT_EQ(streaming.total_offered(), a_offered + fresh.offered());
    EXPECT_EQ(streaming.total_kept(), a_kept + fresh.kept());
  }
}

TEST(DetectionFilterDeathTest, RejectsEmptyTargets) {
  const Grr grr(5, 0.5);
  EXPECT_DEATH(DetectionFilter(grr, {}), "LDPR_CHECK");
}

TEST(DetectionFilterDeathTest, EstimateRequiresKeptReports) {
  const Grr grr(5, 0.5);
  DetectionFilter filter(grr, {1});
  EXPECT_DEATH((void)filter.Estimate(), "LDPR_CHECK");
}

}  // namespace
}  // namespace ldpr
