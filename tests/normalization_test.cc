#include "recover/normalization.h"

#include <gtest/gtest.h>

#include "recover/simplex_projection.h"
#include "util/math_util.h"
#include "util/metrics.h"
#include "util/random.h"

namespace ldpr {
namespace {

TEST(BasePosTest, ClampsNegativesOnly) {
  const auto out = BasePos({-0.2, 0.5, 0.9});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 0.9);
  // No renormalization: sum may exceed 1.
  EXPECT_DOUBLE_EQ(Sum(out), 1.4);
}

TEST(ClipAndRenormalizeTest, ProducesProbabilityVector) {
  const auto out = ClipAndRenormalize({-0.2, 0.3, 0.9});
  EXPECT_TRUE(IsProbabilityVector(out));
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_NEAR(out[1], 0.25, 1e-12);
  EXPECT_NEAR(out[2], 0.75, 1e-12);
}

TEST(ClipAndRenormalizeTest, DegenerateInputBecomesUniform) {
  const auto out = ClipAndRenormalize({-0.5, -0.1, 0.0, -0.2});
  for (double x : out) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(NormSubTest, MatchesKktProjection) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(17);
    for (double& x : v) x = rng.UniformDouble() - 0.3;
    const auto a = NormSub(v);
    const auto b = ProjectToSimplexKkt(v);
    for (size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(NormalizationAblationTest, MethodsDifferOnSkewedInput) {
  // The ablation point: clip+renorm *rescales* (multiplicative) while
  // norm-sub *shifts* (additive); they disagree away from the simplex.
  const std::vector<double> v = {0.9, 0.4, -0.1};
  const auto clip = ClipAndRenormalize(v);
  const auto sub = NormSub(v);
  EXPECT_GT(LInfDistance(clip, sub), 1e-3);
}

}  // namespace
}  // namespace ldpr
