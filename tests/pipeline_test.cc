#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/factory.h"
#include "util/math_util.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(MaliciousUserCountTest, MatchesBetaDefinition) {
  // beta = m / (n + m)  =>  m = beta n / (1 - beta).
  EXPECT_EQ(MaliciousUserCount(0.0, 1000), 0u);
  EXPECT_EQ(MaliciousUserCount(0.05, 389894), 20521u);
  // Round trip: m/(n+m) ~= beta.
  const size_t m = MaliciousUserCount(0.2, 10000);
  EXPECT_NEAR(static_cast<double>(m) / (10000.0 + m), 0.2, 1e-3);
}

TEST(MakeAttackTest, InstantiatesEveryKind) {
  PipelineConfig config;
  Rng rng(1);
  for (AttackKind kind :
       {AttackKind::kManip, AttackKind::kMga, AttackKind::kAdaptive,
        AttackKind::kMgaIpa, AttackKind::kMultiAdaptive}) {
    config.attack = kind;
    const auto attack = MakeAttack(config, 102, rng);
    ASSERT_NE(attack, nullptr) << AttackKindName(kind);
  }
  config.attack = AttackKind::kNone;
  EXPECT_EQ(MakeAttack(config, 102, rng), nullptr);
}

TEST(PipelineTest, NoAttackMeansPoisonedEqualsGenuine) {
  const Dataset ds = MakeZipfDataset("z", 20, 20000, 1.0, 5);
  const auto proto = MakeProtocol(ProtocolKind::kGrr, 20, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kNone;
  Rng rng(2);
  const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
  EXPECT_EQ(t.m, 0u);
  EXPECT_TRUE(t.malicious_freqs.empty());
  for (size_t v = 0; v < 20; ++v)
    EXPECT_DOUBLE_EQ(t.poisoned_freqs[v], t.genuine_freqs[v]);
}

TEST(PipelineTest, MixtureIdentityHoldsExactly) {
  // Eq. (14) at the count level: the poisoned estimate is the exact
  // eta-weighted mixture of the genuine and malicious estimates.
  const Dataset ds = MakeZipfDataset("z", 30, 30000, 1.0, 5);
  const auto proto = MakeProtocol(ProtocolKind::kOue, 30, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kMga;
  config.beta = 0.1;
  Rng rng(3);
  const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
  ASSERT_GT(t.m, 0u);
  const double n = static_cast<double>(t.n);
  const double m = static_cast<double>(t.m);
  for (size_t v = 0; v < 30; ++v) {
    const double mixture = (n * t.genuine_freqs[v] + m * t.malicious_freqs[v]) /
                           (n + m);
    EXPECT_NEAR(t.poisoned_freqs[v], mixture, 1e-9);
  }
}

TEST(PipelineTest, TargetsReportedForTargetedAttacks) {
  const Dataset ds = MakeZipfDataset("z", 40, 10000, 1.0, 5);
  const auto proto = MakeProtocol(ProtocolKind::kGrr, 40, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kMga;
  config.num_targets = 7;
  Rng rng(4);
  const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
  EXPECT_EQ(t.attack_targets.size(), 7u);
  EXPECT_EQ(t.malicious_reports.size(), t.m);
}

TEST(PipelineTest, UntargetedAttacksHaveNoTargets) {
  const Dataset ds = MakeZipfDataset("z", 40, 10000, 1.0, 5);
  const auto proto = MakeProtocol(ProtocolKind::kGrr, 40, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kAdaptive;
  Rng rng(5);
  const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
  EXPECT_TRUE(t.attack_targets.empty());
  EXPECT_GT(t.m, 0u);
}

TEST(PipelineTest, GenuineEstimateTracksTruth) {
  const Dataset ds = MakeZipfDataset("z", 25, 50000, 1.0, 9);
  const auto proto = MakeProtocol(ProtocolKind::kOue, 25, 1.0);
  PipelineConfig config;
  config.attack = AttackKind::kNone;
  Rng rng(6);
  const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
  EXPECT_LT(Mse(t.true_freqs, t.genuine_freqs), 1e-3);
}

TEST(PipelineTest, PoisoningInflatesError) {
  const Dataset ds = MakeZipfDataset("z", 25, 50000, 1.0, 9);
  const auto proto = MakeProtocol(ProtocolKind::kOue, 25, 0.5);
  PipelineConfig config;
  config.attack = AttackKind::kMga;
  config.beta = 0.05;
  Rng rng(7);
  const TrialOutput t = RunPoisoningTrial(*proto, config, ds, rng);
  EXPECT_GT(Mse(t.true_freqs, t.poisoned_freqs),
            5.0 * Mse(t.true_freqs, t.genuine_freqs));
}

TEST(PipelineTest, ExactAndFastGenuineAgreeInExpectation) {
  const Dataset ds = MakeZipfDataset("z", 12, 4000, 1.0, 9);
  const auto proto = MakeProtocol(ProtocolKind::kGrr, 12, 1.0);
  PipelineConfig fast_cfg, exact_cfg;
  fast_cfg.attack = exact_cfg.attack = AttackKind::kNone;
  exact_cfg.exact_genuine = true;

  Rng rng(8);
  RunningStat fast0, exact0;
  for (int trial = 0; trial < 15; ++trial) {
    fast0.Add(RunPoisoningTrial(*proto, fast_cfg, ds, rng).genuine_freqs[0]);
    exact0.Add(RunPoisoningTrial(*proto, exact_cfg, ds, rng).genuine_freqs[0]);
  }
  EXPECT_NEAR(fast0.mean(), exact0.mean(), 0.03);
}

}  // namespace
}  // namespace ldpr
