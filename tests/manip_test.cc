#include "attack/manip.h"

#include <set>

#include <gtest/gtest.h>

#include "ldp/grr.h"
#include "ldp/olh.h"
#include "ldp/oue.h"
#include "util/metrics.h"

namespace ldpr {
namespace {

TEST(ManipTest, CraftsRequestedCount) {
  const Grr grr(20, 0.5);
  const ManipAttack attack;
  Rng rng(1);
  EXPECT_EQ(attack.Craft(grr, 0, rng).size(), 0u);
  EXPECT_EQ(attack.Craft(grr, 123, rng).size(), 123u);
}

TEST(ManipTest, IsUntargeted) {
  EXPECT_TRUE(ManipAttack().targets().empty());
}

TEST(ManipTest, GrrReportsConfinedToSubdomain) {
  const size_t d = 40;
  const Grr grr(d, 0.5);
  ManipOptions opts;
  opts.domain_fraction = 0.25;
  const ManipAttack attack(opts);
  Rng rng(2);
  const auto reports = attack.Craft(grr, 2000, rng);
  std::set<uint32_t> values;
  for (const Report& r : reports) values.insert(r.value);
  // |H| = 10: at most 10 distinct values appear.
  EXPECT_LE(values.size(), 10u);
  EXPECT_GE(values.size(), 5u);  // with 2000 draws nearly all appear
}

TEST(ManipTest, TinyFractionStillUsesOneItem) {
  const Grr grr(10, 0.5);
  ManipOptions opts;
  opts.domain_fraction = 0.001;
  const ManipAttack attack(opts);
  Rng rng(3);
  const auto reports = attack.Craft(grr, 100, rng);
  std::set<uint32_t> values;
  for (const Report& r : reports) values.insert(r.value);
  EXPECT_EQ(values.size(), 1u);
}

TEST(ManipTest, OueReportsAreOneHot) {
  const Oue oue(15, 0.5);
  const ManipAttack attack;
  Rng rng(4);
  for (const Report& r : attack.Craft(oue, 50, rng)) {
    int ones = 0;
    for (uint8_t b : r.bits) ones += b;
    EXPECT_EQ(ones, 1);
  }
}

TEST(ManipTest, OlhReportsSupportTheirItem) {
  const Olh olh(30, 0.5);
  const ManipAttack attack;
  Rng rng(5);
  const auto reports = attack.Craft(olh, 100, rng);
  for (const Report& r : reports) {
    int supported = 0;
    for (ItemId v = 0; v < 30; ++v) supported += olh.Supports(r, v) ? 1 : 0;
    EXPECT_GE(supported, 1);  // at least the chosen item
  }
}

TEST(ManipTest, DistortsAggregatedDistribution) {
  // The attack's purpose: the poisoned estimate drifts from the truth
  // in L1 (the paper's Manip objective).
  const size_t d = 20;
  const Grr grr(d, 0.5);
  Rng rng(6);
  const size_t n = 50000, m = 5000;
  std::vector<uint64_t> item_counts(d, n / d);

  const auto genuine_counts = grr.SampleSupportCounts(item_counts, rng);
  const auto genuine = grr.EstimateFrequencies(genuine_counts, n);

  const ManipAttack attack;
  auto poisoned_counts = genuine_counts;
  for (const Report& r : attack.Craft(grr, m, rng))
    grr.AccumulateSupports(r, poisoned_counts);
  const auto poisoned = grr.EstimateFrequencies(poisoned_counts, n + m);

  std::vector<double> truth(d, 1.0 / d);
  EXPECT_GT(L1Distance(truth, poisoned), 2.0 * L1Distance(truth, genuine));
}

}  // namespace
}  // namespace ldpr
