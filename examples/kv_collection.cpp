// kv_collection: poisoning recovery for key-value data — the
// extension named in the paper's conclusion as future work.
//
// An app store collects (category, rating) pairs under LDP: the
// category via GRR, the rating (rescaled to [-1, 1]) via randomized
// response with PrivKV's fake-value rule.  A fraud ring injects
// crafted ("games", +1) reports to make an unpopular category look
// both popular and loved.  KvRecover repairs category frequencies
// with LDPRecover and strips the implied malicious tallies from the
// rating channel.
//
// Build & run:  ./build/examples/kv_collection

#include <cstdio>

#include "kv/kv.h"
#include "util/metrics.h"
#include "util/random.h"

int main() {
  using namespace ldpr;

  const char* kCategories[] = {"productivity", "social",  "photo",
                               "finance",      "fitness", "games"};
  const size_t d = 6;
  const std::vector<double> category_freqs = {0.3, 0.25, 0.2, 0.13, 0.08,
                                              0.04};
  // Mean rating per category, rescaled to [-1, 1].
  const std::vector<double> mean_ratings = {0.5, 0.1, 0.3, -0.2, 0.4, -0.7};

  const KvProtocol protocol(d, /*eps_key=*/1.0, /*eps_value=*/1.0);
  constexpr uint64_t kDemoSeed = 77;  // pinned so the output is reproducible
  Rng rng(kDemoSeed);

  // 200k genuine users, one (category, rating) pair each.
  const AliasSampler categories(category_freqs);
  KvAggregator agg(protocol);
  const size_t n = 200000;
  for (size_t i = 0; i < n; ++i) {
    KvPair pair;
    pair.key = static_cast<ItemId>(categories.Sample(rng));
    // Individual ratings jitter around the category mean.
    pair.value = std::max(
        -1.0, std::min(1.0, mean_ratings[pair.key] +
                                (rng.UniformDouble() - 0.5) * 0.6));
    agg.Add(protocol.Perturb(pair, rng));
  }

  // The fraud ring: 12k crafted ("games", +1) reports.
  const ItemId target = 5;
  for (int i = 0; i < 12000; ++i) agg.Add(protocol.CraftReport(target));

  const KvEstimate poisoned = agg.Estimate();
  KvRecoverOptions options;
  options.eta = 0.1;
  options.known_targets = std::vector<ItemId>{target};
  const KvEstimate recovered = KvRecover(protocol, agg, options);

  std::printf("%-14s %8s %8s %8s | %8s %8s %8s\n", "category", "f.true",
              "f.pois", "f.rec", "m.true", "m.pois", "m.rec");
  for (size_t k = 0; k < d; ++k) {
    std::printf("%-14s %8.3f %8.3f %8.3f | %+8.2f %+8.2f %+8.2f%s\n",
                kCategories[k], category_freqs[k], poisoned.frequencies[k],
                recovered.frequencies[k], mean_ratings[k], poisoned.means[k],
                recovered.means[k], k == target ? "  <- attacked" : "");
  }
  std::printf(
      "\nfrequency MSE: poisoned %.3e -> recovered %.3e\n"
      "'games' rating error: poisoned %+.2f -> recovered %+.2f\n",
      Mse(category_freqs, poisoned.frequencies),
      Mse(category_freqs, recovered.frequencies),
      poisoned.means[target] - mean_ratings[target],
      recovered.means[target] - mean_ratings[target]);
  return 0;
}
