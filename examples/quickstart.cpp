// Quickstart: the library's core loop in ~60 lines.
//
//   1. users perturb their items with an LDP protocol (GRR here);
//   2. an attacker injects crafted reports (MGA promoting item 7);
//   3. the server aggregates a *poisoned* frequency estimate;
//   4. LDPRecover repairs it without knowing anything about the attack;
//   5. (optional) the summary persists through a machine-readable
//      ResultSink — the same CSV layer `ldpr_bench --out` writes.
//
// Build & run:  ./build/example_quickstart [results.csv]

#include <cstdio>
#include <memory>

#include "attack/mga.h"
#include "data/synthetic.h"
#include "ldp/grr.h"
#include "recover/ldprecover.h"
#include "runner/result_sink.h"
#include "util/metrics.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace ldpr;

  // A population of 50,000 users over 16 items, Zipf-distributed.
  const Dataset population = MakeZipfDataset("demo", 16, 50000, 1.0, 7);
  const std::vector<double> truth = population.TrueFrequencies();

  const Grr grr(population.domain_size(), /*epsilon=*/1.0);
  constexpr uint64_t kDemoSeed = 42;  // pinned so the output is reproducible
  Rng rng(kDemoSeed);

  // 1-2. Aggregate genuine reports, then append 2,500 crafted ones
  //      (5% malicious) that all promote item 7.
  std::vector<double> counts =
      grr.SampleSupportCounts(population.item_counts, rng);
  const MgaAttack attack({7});
  const size_t m = 2500;
  for (const Report& r : attack.Craft(grr, m, rng))
    grr.AccumulateSupports(r, counts);

  // 3. The server's poisoned estimate.
  const size_t total_users = population.num_users() + m;
  const std::vector<double> poisoned =
      grr.EstimateFrequencies(counts, total_users);

  // 4. Recover.  eta deliberately over-estimates the true malicious
  //    ratio (the paper's recommended practice).  The second instance
  //    is LDPRecover*: the server learned (e.g. from historical
  //    outlier detection, see examples/emoji_survey.cpp) that item 7
  //    is the attacker's target.
  RecoverOptions options;
  options.eta = 0.2;
  const LdpRecover recover(grr, options);
  const std::vector<double> recovered = recover.Recover(poisoned);

  RecoverOptions star_options = options;
  star_options.known_targets = std::vector<ItemId>{7};
  const LdpRecover star(grr, star_options);
  const std::vector<double> recovered_star = star.Recover(poisoned);

  std::printf("item   truth   poisoned  recovered  recovered*\n");
  for (size_t v = 0; v < truth.size(); ++v) {
    std::printf("%4zu  %.4f   %+.4f    %.4f     %.4f%s\n", v, truth[v],
                poisoned[v], recovered[v], recovered_star[v],
                v == 7 ? "   <- attacked" : "");
  }
  std::printf(
      "\nMSE vs truth:  poisoned %.3e   LDPRecover %.3e   LDPRecover* "
      "%.3e\n",
      Mse(truth, poisoned), Mse(truth, recovered),
      Mse(truth, recovered_star));
  std::printf(
      "item 7 inflation: poisoned %+.4f, LDPRecover %+.4f, LDPRecover* "
      "%+.4f\n",
      poisoned[7] - truth[7], recovered[7] - truth[7],
      recovered_star[7] - truth[7]);

  // 5. Machine-readable results, if a path was given.  Every scenario
  //    and tool writes through this interface; Finish() fails on
  //    partial writes, so checking it is part of the contract.
  if (argc > 1) {
    CsvSink sink(argv[1]);
    ScenarioRunInfo info;
    info.id = "quickstart";
    sink.BeginScenario(info);
    sink.BeginTable("quickstart MSE vs truth",
                    {"poisoned", "ldprecover", "ldprecover_star"});
    sink.AddRow("mse", {Mse(truth, poisoned), Mse(truth, recovered),
                        Mse(truth, recovered_star)});
    sink.EndTable();
    const Status status = sink.Finish();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
