// mean_estimation: LDPRecover beyond plain frequencies (Section
// VII-A of the paper).
//
// Harmony estimates a population mean by discretizing each numeric
// value into {+1, -1} and running binary randomized response — i.e.
// the task reduces to a 2-item frequency estimation problem.  A
// poisoning attacker who floods "+1" reports inflates the mean (think
// star-rating fraud); LDPRecover repairs the underlying binary
// frequency vector and the corrected mean falls out.
//
// Build & run:  ./build/examples/mean_estimation

#include <cmath>
#include <cstdio>
#include <vector>

#include "ldp/harmony.h"
#include "recover/ldprecover.h"
#include "util/random.h"

int main() {
  using namespace ldpr;

  const Harmony harmony(/*epsilon=*/1.0);
  const Grr& rr = harmony.protocol();  // binary randomized response
  constexpr uint64_t kDemoSeed = 99;  // pinned so the output is reproducible
  Rng rng(kDemoSeed);

  // 100k genuine users with ratings centred at -0.2 (on [-1, 1]).
  const size_t n = 100000;
  const double true_mean = -0.2;
  Aggregator all(rr);
  for (size_t i = 0; i < n; ++i) {
    // Individual values jitter around the mean; Harmony only needs
    // them in [-1, 1].
    const double value =
        std::fmax(-1.0, std::fmin(1.0, true_mean + (rng.UniformDouble() - 0.5)));
    all.Add(harmony.Perturb(value, rng));
  }

  // 8k malicious users inject raw "+1" reports (bypassing
  // perturbation) to drag the average up.
  const size_t m = 8000;
  for (size_t i = 0; i < m; ++i)
    all.Add(rr.CraftSupportingReport(Harmony::kPlusOne, rng));

  const std::vector<double> poisoned_freqs = all.EstimateFrequencies();
  const double poisoned_mean = Harmony::MeanFromFrequencies(poisoned_freqs);

  // Rating fraud promotes the "+1" side, and the server knows which
  // side a fraudster would promote — so the binary task naturally has
  // partial knowledge: known_targets = {+1}.  (With d = 2 the
  // non-knowledge uniform split cannot distinguish the sides.)
  RecoverOptions options;
  options.eta = 0.08;  // a rough fraud-rate guess; see the sweep note
  options.known_targets = std::vector<ItemId>{Harmony::kPlusOne};
  const LdpRecover recover(rr, options);
  const double recovered_mean =
      Harmony::MeanFromFrequencies(recover.Recover(poisoned_freqs));

  std::printf("true mean:       %+.4f\n", true_mean);
  std::printf("poisoned mean:   %+.4f   (attack pushed it up by %+.4f)\n",
              poisoned_mean, poisoned_mean - true_mean);
  std::printf("recovered mean:  %+.4f   (residual error %+.4f)\n",
              recovered_mean, recovered_mean - true_mean);
  std::printf(
      "\nNote: the recovery over-subtracts slightly (the learned target\n"
      "model is conservative), so the recovered mean errs *below* the\n"
      "truth — the same effect as the paper's negative frequency gains\n"
      "for LDPRecover* in Figure 4.\n");
  return 0;
}
