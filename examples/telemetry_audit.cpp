// telemetry_audit: defending an *untargeted* manipulation attack.
//
// A browser vendor collects default-search-engine telemetry with OLH
// (the Chrome-style deployment from the paper's introduction).  An
// attacker running Manip wants to make the whole distribution look
// wrong — e.g. to poison a market-share report.  The server has no
// idea which items were attacked; plain LDPRecover (non-knowledge
// mode) is the right tool.  The example also sweeps eta to show the
// paper's robustness claim: over-estimating the malicious ratio is
// safe.
//
// Build & run:  ./build/examples/telemetry_audit

#include <cstdio>

#include "attack/manip.h"
#include "data/synthetic.h"
#include "ldp/olh.h"
#include "recover/ldprecover.h"
#include "sim/pipeline.h"
#include "util/metrics.h"

int main() {
  using namespace ldpr;

  // 40 search engines, 150k clients, long-tailed market share.
  const Dataset clients = MakeZipfDataset("search", 40, 150000, 1.4, 11);
  const auto truth = clients.TrueFrequencies();
  const Olh olh(clients.domain_size(), /*epsilon=*/0.5);
  constexpr uint64_t kDemoSeed = 7;  // pinned so the output is reproducible
  Rng rng(kDemoSeed);

  // The attacker hijacks 8% of clients and floods a random half of
  // the domain with uniform crafted reports.
  const double beta = 0.08;
  const size_t m = MaliciousUserCount(beta, clients.num_users());
  const ManipAttack attack;

  auto counts = olh.SampleSupportCounts(clients.item_counts, rng);
  const auto genuine =
      olh.EstimateFrequencies(counts, clients.num_users());
  for (const Report& r : attack.Craft(olh, m, rng))
    olh.AccumulateSupports(r, counts);
  const auto poisoned =
      olh.EstimateFrequencies(counts, clients.num_users() + m);

  std::printf("distortion (L1 to truth): genuine %.4f -> poisoned %.4f\n\n",
              L1Distance(truth, genuine), L1Distance(truth, poisoned));

  // Recover with a range of eta guesses; the server's true ratio is
  // beta/(1-beta) ~ 0.087 but it does not need to know that.
  std::printf("  eta    MSE(poisoned)=%.3e\n", Mse(truth, poisoned));
  for (double eta : {0.01, 0.05, 0.1, 0.2, 0.4}) {
    RecoverOptions options;
    options.eta = eta;
    const LdpRecover recover(olh, options);
    const auto recovered = recover.Recover(poisoned);
    std::printf("  %.2f   MSE(recovered)=%.3e   L1=%.4f\n", eta,
                Mse(truth, recovered), L1Distance(truth, recovered));
  }
  std::printf(
      "\nEvery eta in [0.01, 0.4] beats the poisoned estimate; accuracy\n"
      "peaks when eta is near the true ratio (Figures 5-6 of the paper).\n");
  return 0;
}
