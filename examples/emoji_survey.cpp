// emoji_survey: a realistic targeted-poisoning scenario.
//
// An OS vendor collects the most-used emoji from users' keyboards
// with OUE (the Apple-style deployment the paper's introduction
// motivates).  An attacker controlling 5% of devices runs MGA to push
// three unpopular emoji into the top-10 ranking.  The server:
//
//   * keeps weekly frequency history collected before the attack,
//   * flags this week's statistical outliers (Section V-D),
//   * feeds them to LDPRecover* as partial knowledge, and
//   * publishes a repaired ranking.
//
// Build & run:  ./build/examples/emoji_survey

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "attack/mga.h"
#include "data/synthetic.h"
#include "ldp/oue.h"
#include "recover/ldprecover.h"
#include "recover/outlier.h"
#include "sim/pipeline.h"
#include "util/metrics.h"

namespace {

std::vector<size_t> TopK(const std::vector<double>& freqs, size_t k) {
  std::vector<size_t> order(freqs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](size_t a, size_t b) { return freqs[a] > freqs[b]; });
  order.resize(k);
  return order;
}

void PrintRanking(const char* label, const std::vector<size_t>& top,
                  const std::vector<ldpr::ItemId>& targets) {
  std::printf("%-22s", label);
  for (size_t v : top) {
    const bool attacked =
        std::find(targets.begin(), targets.end(), v) != targets.end();
    std::printf(" %3zu%s", v, attacked ? "*" : " ");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ldpr;

  // 64 emoji, 200k users, heavily skewed usage.
  const Dataset week = MakeZipfDataset("emoji", 64, 200000, 1.2, 3);
  const Oue oue(week.domain_size(), /*epsilon=*/0.5);
  constexpr uint64_t kDemoSeed = 2024;  // pinned so the output is reproducible
  Rng rng(kDemoSeed);

  // Weeks 1-6: clean history the server archives.
  std::vector<std::vector<double>> history;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto counts = oue.SampleSupportCounts(week.item_counts, rng);
    history.push_back(oue.EstimateFrequencies(counts, week.num_users()));
  }

  // Week 7: the attacker promotes three tail emoji.
  const std::vector<ItemId> targets = {49, 57, 61};
  const MgaAttack attack(targets);
  const size_t m = MaliciousUserCount(0.05, week.num_users());

  auto counts = oue.SampleSupportCounts(week.item_counts, rng);
  for (const Report& r : attack.Craft(oue, m, rng))
    oue.AccumulateSupports(r, counts);
  const auto poisoned =
      oue.EstimateFrequencies(counts, week.num_users() + m);

  // Outlier detection against the archived history recovers the
  // attacker's target set without any attack-specific knowledge.
  const std::vector<ItemId> detected =
      DetectFrequencyOutliers(history, poisoned);
  std::printf("detected outlier emoji:");
  for (ItemId v : detected) std::printf(" %u", v);
  std::printf("   (true targets: 49 57 61)\n\n");

  // LDPRecover* with the detected targets as partial knowledge.
  RecoverOptions options;
  options.eta = 0.2;
  if (!detected.empty() && detected.size() < week.domain_size())
    options.known_targets = detected;
  const LdpRecover recover(oue, options);
  const auto recovered = recover.Recover(poisoned);

  const auto truth = week.TrueFrequencies();
  PrintRanking("true top-10:", TopK(truth, 10), targets);
  PrintRanking("poisoned top-10:", TopK(poisoned, 10), targets);
  PrintRanking("recovered top-10:", TopK(recovered, 10), targets);
  std::printf("(* = attacker-promoted emoji)\n\n");

  std::printf("frequency gain over targets: poisoned %+.4f, recovered %+.4f\n",
              FrequencyGain(truth, poisoned, targets),
              FrequencyGain(truth, recovered, targets));
  std::printf("MSE vs truth: poisoned %.3e, recovered %.3e\n",
              Mse(truth, poisoned), Mse(truth, recovered));
  return 0;
}
